//===- tools/jslice_soak.cpp - Slicing-service soak driver --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The service's acceptance gate: floods an in-process Server with
/// generated slice requests — mixed algorithms, criteria, and budgets
/// (some deliberately starved so the degradation ladder must walk) —
/// interleaved with cancellations, malformed lines, and health checks,
/// then audits the response stream:
///
///   * every slice request is answered exactly once, with a legal
///     status;
///   * every resource-exhausted refusal shows the whole ladder tripped
///     or skipped (no silent give-up while a cheaper sound tier
///     remained);
///   * the process neither crashes nor hangs.
///
/// With --fault-stride N it additionally sizes a clean single-request
/// serve in guard checkpoints, then re-serves with a fault injected at
/// every Nth ordinal (threads forced to 1 for determinism): each
/// injected run must still answer the request — served on a surviving
/// rung or refused with diagnostics — and the disarmed re-run must
/// succeed.
///
/// With --crash-matrix it floods a *process-isolated* server while a
/// chaos thread SIGKILLs sandbox workers at random points, then
/// asserts the acceptance bar for the supervision layer: zero lost
/// responses (every request answered exactly once with a legal
/// status), every crashed response naming an on-disk reproducer, and
/// the supervisor's restart counter converging to exactly the kill
/// count.
///
/// With --net it runs the same audits *over TCP*: an in-process
/// `TcpServer` fronted by an in-process `ChaosProxy` injecting delays,
/// truncation, mid-response resets, and stalls, with several retrying
/// `ClientConnection` threads pumping the request stream through the
/// proxy. The acceptance bar: zero lost responses (every request ends
/// in exactly one client-visible terminal status), every failure a
/// deterministic status — while a parallel well-behaved connection,
/// wired directly to the server, sees no errors at all (containment
/// proven, not assumed). `--net --crash-matrix` layers the SIGKILL
/// chaos on top of the network chaos.
///
/// With --disk-chaos it sweeps the journal's injectable I/O seam
/// (service/JournalIo.h): one clean pass sizes each fault kind's
/// ordinal space (writes, flushes, fsyncs, rotation renames), then a
/// fresh server re-serves the same script with that kind armed at every
/// sampled ordinal — short writes, EIO, ENOSPC, flush and fsync
/// failures, and crash-before/-after-rename during rotation (the
/// injected "process death" freezes the on-disk state exactly as a
/// kill -9 would). After every faulted run the surviving journal must
/// scan clean (checksummed records only; torn bytes truncated, never
/// misread), and a reboot on the real filesystem must quarantine
/// exactly the begins the faulted run left unmatched — zero lost
/// responses, zero silently dropped records. The sweep ends with the
/// --journal-failure policy triad under a persistently dead disk
/// (shed refuses deterministically, degrade serves with health marked
/// lost, abort drains and latches the exit flag) and a sharded TCP
/// pass (--shards) whose journal dies mid-load under degrade: every
/// request still answered exactly once and {"health"} honestly
/// degraded.
///
/// With --upgrade-matrix it drives a *real* `jslice_serve` process
/// (--serve-bin) through N zero-downtime hot restarts under full
/// client load, cycling chaos scenarios: a clean SIGUSR2 handoff, a
/// SIGKILL of the old generation mid-drain, a SIGKILL of the successor
/// before readiness (the old generation must roll back and keep
/// serving), a SIGTERM racing an in-flight upgrade (drain must win,
/// exactly once), and back-to-back SIGUSR2 (the second refused
/// deterministically). The serve dynasty shares one stderr pipe —
/// successors inherit it across exec — and the soak scrapes the
/// generation log lines to track who is leader. The acceptance bar is
/// the same exactly-once audit as every other matrix: zero lost
/// responses, every request one legal terminal status, plus at least
/// one observed rollback and one observed refusal (a matrix that never
/// exercised them proved nothing).
///
/// With --failover-matrix it drives a *real* primary/standby pair of
/// `jslice_serve` processes (--serve-bin) under full client load, the
/// replication link routed through the chaos proxy, sweeping five
/// failure scenarios: kill -9 of the primary mid-request followed by
/// promotion; kill -9 of the standby followed by a fresh re-seed from
/// snapshot; a partitioned replication link that heals and must
/// re-attach the stream — a resume from the last acked sequence when
/// the primary retains it, a snapshot when rotation compacted past it
/// during the outage, never silence; a promotion while the old primary
/// still lives, where the epoch fence must deterministically refuse
/// the ex-primary (zero split-brain serves); and a torn replication
/// stream that must re-attach from the ack high-water mark over a
/// clean link. Clients carry both endpoints and fail over
/// on transport errors; the acceptance bar is the exactly-once audit
/// plus, for --repl-ack=sync, an acked-durability audit: a tail batch
/// of responses served over a healthy link, then kill -9 of the
/// primary, must be fully recoverable from the standby's replica
/// journal — zero acknowledged-but-lost records.
///
/// With --bench it times an identical request stream through thread
/// and process isolation — and, where the platform has sockets, a
/// pipelined TCP connection — and writes a benchmark JSON (--out) with
/// throughput, p50/p95 latency, and shed/crash counts per mode — the
/// measured cost of the fork-and-pipe sandbox and the socket hop.
/// Those mode rows run with the analysis cache off so they keep
/// measuring isolation overhead; a separate "zipf" section then replays
/// a Zipf-distributed stream (rank-r program drawn with weight 1/r,
/// the shape of real request traffic) through TCP twice — cache off,
/// then cache on with the self-audit sampling — and records the
/// speedup. Both Zipf passes are fully audited: every request answered
/// exactly once, and the cache's own hit-vs-fresh audit must report
/// zero mismatches, or the bench exits nonzero.
///
/// With --audit-seeds N it runs the cache-correctness sweep: for each
/// of N seeds (alternating dialects) every criterion is requested
/// twice through a fresh server with audit-every-hit enabled; the
/// cached replay must slice bit-identically to the cold build and the
/// cache must self-report zero audit mismatches.
///
/// The volume soak, fault sweep, crash matrix, and net soak all run
/// with the analysis cache in its default-on configuration (override
/// with --cache off), so single-flight coalescing, hit serving,
/// budget-parity fallbacks, and the piggybacked worker cache counters
/// are exercised under every chaos mode. The fault sweep sends each
/// request three times so the cache hit/audit/insert checkpoints are
/// part of the swept ordinal space.
///
///   jslice_soak [--requests N] [--programs N] [--stmts N] [--threads N]
///               [--seed N] [--fault-stride N] [--journal FILE]
///               [--isolate thread|process] [--workers N]
///               [--crash-matrix] [--kill-interval-ms N]
///               [--quarantine DIR] [--bench] [--out FILE]
///               [--net] [--net-clients N] [--shards N] [--disk-chaos]
///               [--upgrade-matrix --serve-bin PATH] [--upgrades N]
///               [--failover-matrix --serve-bin PATH] [--repl-ack P]
///               [--cache on|off] [--cache-entries N] [--cache-bytes N]
///               [--cache-audit-every N] [--audit-seeds N] [--verbose]
///
/// Exit codes: 0 — no violations; 1 — at least one violation; 2 —
/// usage error.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "net/ChaosProxy.h"
#include "net/Client.h"
#include "net/Socket.h"
#include "net/StandbyTail.h"
#include "net/TcpServer.h"
#include "service/Journal.h"
#include "service/JournalIo.h"
#include "service/Replication.h"
#include "service/Server.h"
#include "support/Pipe.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace jslice;

namespace {

struct SoakOptions {
  uint64_t Requests = 10000;
  unsigned Programs = 100;
  unsigned TargetStmts = 40;
  unsigned Threads = 0;
  uint64_t Seed = 1;
  uint64_t FaultStride = 0;
  std::string JournalPath;
  bool IsolateProcess = false;
  unsigned Workers = 0;
  bool CrashMatrix = false;
  uint64_t KillIntervalMs = 5;
  unsigned BreakerThreshold = 0; ///< 0 = supervisor default.
  std::string QuarantineDir = "poisoned";
  bool Bench = false;
  std::string OutPath;
  bool Net = false;
  unsigned NetClients = 4;
  unsigned Shards = 0; ///< Transport reactor shards; 0 = hardware.
  bool DiskChaos = false;
  bool UpgradeMatrix = false;
  bool FailoverMatrix = false;
  std::string ServeBin;   ///< jslice_serve binary for the process matrices.
  uint64_t Upgrades = 20; ///< Hot restarts the matrix must complete.
  /// Replication ack policy for the failover matrix (sync is the
  /// strictest: it arms the acked-durability audit).
  ReplAckPolicy ReplAck = ReplAckPolicy::Sync;
  bool CacheEnabled = true;
  uint64_t CacheEntries = 0;    ///< 0 = CacheOptions default.
  uint64_t CacheBytes = 0;      ///< 0 = CacheOptions default.
  uint64_t CacheAuditEvery = 0; ///< 0 = no self-audit sampling.
  uint64_t AuditSeeds = 0;      ///< Nonzero selects the audit sweep.
  bool Verbose = false;
};

/// The soak's cache flags as server options. The audit PRNG is seeded
/// from --seed so a sweep failure replays.
CacheOptions cacheOptions(const SoakOptions &Opts) {
  CacheOptions C;
  C.Enabled = Opts.CacheEnabled;
  if (Opts.CacheEntries)
    C.MaxEntries = static_cast<unsigned>(Opts.CacheEntries);
  if (Opts.CacheBytes)
    C.MaxBytes = Opts.CacheBytes;
  C.AuditEvery = static_cast<unsigned>(Opts.CacheAuditEvery);
  C.AuditSeed = Opts.Seed ? Opts.Seed : 1;
  return C;
}

const SliceAlgorithm AllAlgorithms[] = {
    SliceAlgorithm::Conventional,    SliceAlgorithm::Agrawal,
    SliceAlgorithm::AgrawalLst,      SliceAlgorithm::Structured,
    SliceAlgorithm::Conservative,    SliceAlgorithm::BallHorwitz,
    SliceAlgorithm::Lyle,            SliceAlgorithm::Gallagher,
    SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser,
};

int usage() {
  std::fprintf(stderr,
               "usage: jslice_soak [--requests N] [--programs N] [--stmts N]"
               " [--threads N]\n"
               "                   [--seed N] [--fault-stride N] "
               "[--journal FILE]\n"
               "                   [--isolate thread|process] [--workers N]\n"
               "                   [--crash-matrix] [--kill-interval-ms N] "
               "[--quarantine DIR]\n"
               "                   [--bench] [--out FILE] [--net] "
               "[--net-clients N] [--shards N]\n"
               "                   [--disk-chaos]\n"
               "                   [--upgrade-matrix --serve-bin PATH] "
               "[--upgrades N]\n"
               "                   [--failover-matrix --serve-bin PATH] "
               "[--repl-ack async|flush|sync]\n"
               "                   [--cache on|off] [--cache-entries N] "
               "[--cache-bytes N]\n"
               "                   [--cache-audit-every N] [--audit-seeds N] "
               "[--verbose]\n");
  return 2;
}

std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    if (Value > (UINT64_MAX - static_cast<uint64_t>(C - '0')) / 10)
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  return Value;
}

/// One generated program with its usable criteria.
struct SoakProgram {
  std::string Source;
  std::vector<Criterion> Criteria;
};

/// Generates \p N programs (alternating dialects) and mines each for
/// criteria. Programs that fail analysis still participate — their
/// requests must come back as clean `error` responses.
std::vector<SoakProgram> buildPrograms(const SoakOptions &Opts) {
  std::vector<SoakProgram> Out;
  for (unsigned I = 0; I != Opts.Programs; ++I) {
    GenOptions Gen;
    Gen.Seed = Opts.Seed + I;
    Gen.TargetStmts = Opts.TargetStmts;
    Gen.AllowGotos = (I % 2) == 1;
    SoakProgram P;
    P.Source = generateProgram(Gen);
    ErrorOr<Analysis> A = Analysis::fromSource(P.Source, Budget::unlimited());
    if (A)
      P.Criteria = reachableWriteCriteria(*A);
    if (P.Criteria.empty())
      P.Criteria.push_back(Criterion(1, {}));
    Out.push_back(std::move(P));
  }
  return Out;
}

/// What the audit saw for one response line.
struct Audit {
  uint64_t Responses = 0;
  uint64_t CancelAcks = 0;
  uint64_t StatsReplies = 0;
  uint64_t Unparseable = 0;
  uint64_t Violations = 0;
  std::map<std::string, uint64_t> ByStatus;
  std::map<std::string, uint64_t> SliceResponses; ///< id -> count.
  uint64_t DegradedServes = 0;
  uint64_t CachedServes = 0;
  uint64_t AuditedServes = 0;
  std::string StatsLine; ///< Last stats reply, raw (cache counters).
  bool RequireCrashRepro = false; ///< crashed must name an on-disk repro.
};

void violation(Audit &A, const char *Why, const std::string &Line) {
  ++A.Violations;
  std::fprintf(stderr, "VIOLATION: %s: %s\n", Why, Line.c_str());
}

/// Audits one response line from the server.
void auditLine(const std::string &Line, Audit &A) {
  ++A.Responses;
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject()) {
    ++A.Unparseable;
    violation(A, "unparseable response line", Line);
    return;
  }
  if (V->find("cancel")) {
    ++A.CancelAcks;
    return;
  }
  if (V->find("stats")) {
    ++A.StatsReplies;
    A.StatsLine = Line;
    return;
  }
  const JsonValue *Status = V->find("status");
  if (!Status || !Status->isString()) {
    violation(A, "response without status", Line);
    return;
  }
  std::string S = Status->asString();
  ++A.ByStatus[S];
  if (S != "ok" && S != "resource-exhausted" && S != "error" &&
      S != "bad-request" && S != "cancelled" && S != "poisoned" &&
      S != "crashed" && S != "shed") {
    violation(A, "unknown status", Line);
    return;
  }
  if (const JsonValue *Id = V->find("id"))
    if (Id->isString() && !Id->asString().empty())
      ++A.SliceResponses[Id->asString()];

  if (S == "crashed" && A.RequireCrashRepro) {
    const JsonValue *Repro = V->find("repro");
    if (!Repro || !Repro->isString() ||
        !std::filesystem::exists(Repro->asString()))
      violation(A, "crashed response without an on-disk reproducer", Line);
  }

  if (S == "ok") {
    const JsonValue *Degraded = V->find("degraded");
    if (Degraded && Degraded->isBool() && Degraded->asBool())
      ++A.DegradedServes;
    if (const JsonValue *Cached = V->find("cached"))
      if (Cached->isBool() && Cached->asBool())
        ++A.CachedServes;
    if (const JsonValue *Audited = V->find("audited"))
      if (Audited->isBool() && Audited->asBool())
        ++A.AuditedServes;
    if (!V->find("lines") || !V->find("lines")->isArray())
      violation(A, "ok response without lines", Line);
  } else if (S == "resource-exhausted") {
    // A refusal is only legal once the whole ladder was consumed:
    // every attempted rung tripped or was skipped as unsound.
    const JsonValue *Attempts = V->find("attempts");
    if (!Attempts || !Attempts->isArray() || Attempts->elements().empty()) {
      violation(A, "refusal without ladder attempts", Line);
      return;
    }
    for (const JsonValue &At : Attempts->elements()) {
      const JsonValue *Outcome = At.find("outcome");
      if (!Outcome || !Outcome->isString() ||
          Outcome->asString() == "served")
        violation(A, "refusal whose attempts claim a served rung", Line);
    }
  }
}

/// Serves \p Input on a fresh server and audits every response line.
/// Returns the raw response text (for callers that inspect further).
/// \p Final, when non-null, receives the server's own counters after
/// the drain — the settled numbers, unlike an in-band {"stats"} reply,
/// which the serve loop answers while slice work is still queued.
std::string serveAndAudit(const SoakOptions &Opts, const std::string &Input,
                          unsigned Threads, Audit &A,
                          ServerStats *Final = nullptr) {
  std::istringstream In(Input);
  std::ostringstream Out;
  std::ostringstream Log;
  ServerOptions SOpts;
  SOpts.Threads = Threads;
  SOpts.JournalPath = Opts.JournalPath;
  SOpts.IsolateProcess = Opts.IsolateProcess;
  SOpts.Super.Workers = Opts.Workers;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.Cache = cacheOptions(Opts);
  Server S(SOpts, Out, Log);
  S.recover();
  S.serve(In);
  S.finish();
  if (Final)
    *Final = S.stats();
  std::string Text = Out.str();
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line))
    if (!Line.empty())
      auditLine(Line, A);
  if (Opts.Verbose && !Log.str().empty())
    std::fputs(Log.str().c_str(), stderr);
  return Text;
}

/// Validates the settled cache counters after a drain: self-audit
/// mismatches must be zero always (a mismatch means the cache served a
/// slice that differed from a fresh computation — the one lie this
/// whole subsystem must never tell). Returns the counters for
/// reporting; counts violations into \p Violations.
std::optional<CacheStats> checkCacheStats(const SoakOptions &Opts,
                                          const ServerStats &Final,
                                          uint64_t &Violations) {
  if (Final.CacheEnabled != Opts.CacheEnabled) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: server reports cache_enabled=%d but the soak "
                 "configured %d\n",
                 Final.CacheEnabled, Opts.CacheEnabled);
    return std::nullopt;
  }
  if (!Opts.CacheEnabled)
    return std::nullopt;
  CacheStats CS = Final.Cache;
  if (CS.AuditMismatches) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: cache self-audit caught %llu divergent "
                 "slices\n",
                 static_cast<unsigned long long>(CS.AuditMismatches));
  }
  return CS;
}

/// The in-band {"stats"} reply must expose the cache telemetry block
/// whenever the cache is configured on. Its counters are a racing
/// snapshot (the serve loop answers stats while slice work is still
/// queued), so only shape is asserted here — settled numbers come from
/// checkCacheStats over Server::stats().
void checkStatsExposure(const SoakOptions &Opts, const Audit &A,
                        uint64_t &Violations) {
  std::optional<JsonValue> V = JsonValue::parse(A.StatsLine);
  const JsonValue *Stats = V && V->isObject() ? V->find("stats") : nullptr;
  if (!Stats || !Stats->isObject()) {
    ++Violations;
    std::fprintf(stderr, "VIOLATION: no parseable stats reply captured\n");
    return;
  }
  const JsonValue *Enabled = Stats->find("cache_enabled");
  bool ReportsEnabled = Enabled && Enabled->isBool() && Enabled->asBool();
  if (ReportsEnabled != Opts.CacheEnabled ||
      (Opts.CacheEnabled && !Stats->find("cache")) ||
      !Stats->find("rss_bytes")) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: stats reply missing cache/rss telemetry: %s\n",
                 A.StatsLine.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Volume soak
//===----------------------------------------------------------------------===//

int runVolumeSoak(const SoakOptions &Opts) {
  std::vector<SoakProgram> Programs = buildPrograms(Opts);

  std::ostringstream Stream;
  uint64_t Slices = 0, Cancels = 0, BadLines = 0;
  for (uint64_t I = 0; I != Opts.Requests; ++I) {
    if (I % 97 == 96) {
      // Garbage must bounce as bad-request, never wedge the reader.
      Stream << (I % 2 ? "{\"id\": 42}" : "{not json") << "\n";
      ++BadLines;
      continue;
    }
    const SoakProgram &P = Programs[I % Programs.size()];
    ServiceRequest R;
    R.Id = "q" + std::to_string(I);
    R.Program = P.Source;
    const Criterion &C = P.Criteria[I % P.Criteria.size()];
    R.Line = C.Line;
    R.Vars = C.Vars;
    R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                     sizeof(AllAlgorithms[0]))];
    if (I % 7 == 3)
      R.MaxSteps = 200 + (I % 5) * 100; // Starved: the ladder must walk.
    if (I % 13 == 6)
      R.BudgetMs = 1; // Deadline-starved.
    Stream << R.toJson().str() << "\n";
    ++Slices;
    if (I % 101 == 100 && I) {
      // Cancel a request that is queued, running, or already done —
      // all three must be safe.
      Stream << "{\"cancel\": \"q" << (I - 1) << "\"}\n";
      ++Cancels;
    }
  }
  Stream << "{\"stats\": true}\n";

  Audit A;
  ServerStats Final;
  serveAndAudit(Opts, Stream.str(), Opts.Threads, A, &Final);

  // Every slice request answered exactly once.
  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++A.Violations;
      std::fprintf(stderr, "VIOLATION: id %s answered %llu times\n",
                   Id.c_str(), static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Slices) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu slice requests, %zu distinct responses\n",
                 static_cast<unsigned long long>(Slices),
                 A.SliceResponses.size());
  }
  if (A.StatsReplies != 1 || A.CancelAcks != Cancels) {
    ++A.Violations;
    std::fprintf(stderr, "VIOLATION: %llu stats replies, %llu cancel acks "
                         "(expected 1, %llu)\n",
                 static_cast<unsigned long long>(A.StatsReplies),
                 static_cast<unsigned long long>(A.CancelAcks),
                 static_cast<unsigned long long>(Cancels));
  }
  std::optional<CacheStats> CS = checkCacheStats(Opts, Final, A.Violations);
  checkStatsExposure(Opts, A, A.Violations);

  std::printf("jslice_soak: %llu requests (%llu slices, %llu cancels, %llu "
              "bad lines) -> %llu responses\n",
              static_cast<unsigned long long>(Slices + Cancels + BadLines + 1),
              static_cast<unsigned long long>(Slices),
              static_cast<unsigned long long>(Cancels),
              static_cast<unsigned long long>(BadLines),
              static_cast<unsigned long long>(A.Responses));
  for (const auto &[S, N] : A.ByStatus)
    std::printf("               %-18s %llu\n", S.c_str(),
                static_cast<unsigned long long>(N));
  std::printf("               degraded serves    %llu\n",
              static_cast<unsigned long long>(A.DegradedServes));
  if (CS)
    std::printf("               cache              %llu hits / %llu misses, "
                "%llu coalesced, %llu evictions, %llu audits (%llu "
                "mismatches)\n",
                static_cast<unsigned long long>(CS->Hits),
                static_cast<unsigned long long>(CS->Misses),
                static_cast<unsigned long long>(CS->Coalesced),
                static_cast<unsigned long long>(CS->Evictions),
                static_cast<unsigned long long>(CS->Audits),
                static_cast<unsigned long long>(CS->AuditMismatches));
  std::printf("               violations         %llu\n",
              static_cast<unsigned long long>(A.Violations));
  return A.Violations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Fault-injection sweep
//===----------------------------------------------------------------------===//

int runFaultSweep(const SoakOptions &CliOpts) {
  // Each request goes three times: miss-and-build, then two cache hits
  // with audit-every-hit, so the sweep's ordinal space covers
  // cache.key / cache.lookup / cache.insert / cache.hit / cache.audit
  // alongside the analysis pipeline. A fault on any cache checkpoint
  // must degrade to the plain ladder, never to a lost or wrong answer.
  constexpr unsigned Reps = 3;
  SoakOptions Opts = CliOpts;
  if (Opts.CacheEnabled && !Opts.CacheAuditEvery)
    Opts.CacheAuditEvery = 1;
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  if (Programs.size() > 5)
    Programs.resize(5); // Every ordinal of five programs is plenty.

  uint64_t FaultRuns = 0, Violations = 0;
  for (size_t PI = 0; PI != Programs.size(); ++PI) {
    const SoakProgram &P = Programs[PI];
    std::string Input;
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      ServiceRequest R;
      R.Id = "f" + std::to_string(PI) + "-" + std::to_string(Rep);
      R.Program = P.Source;
      R.Line = P.Criteria.front().Line;
      R.Vars = P.Criteria.front().Vars;
      Input += R.toJson().str() + "\n";
    }

    // Size the clean serve in checkpoints (threads=1 keeps the
    // process-wide fault ordinal deterministic).
    FaultInjection::resetCount();
    {
      Audit A;
      serveAndAudit(Opts, Input, /*Threads=*/1, A);
      Violations += A.Violations;
    }
    uint64_t Total = FaultInjection::observedCheckpoints();

    for (uint64_t At = 1; At <= Total; At += Opts.FaultStride) {
      FaultInjection::ScopedArm Arm(At);
      ++FaultRuns;
      Audit A;
      serveAndAudit(Opts, Input, /*Threads=*/1, A);
      Violations += A.Violations;
      bool Once = A.SliceResponses.size() == Reps;
      for (const auto &[Id, N] : A.SliceResponses)
        Once = Once && N == 1;
      if (!Once) {
        ++Violations;
        std::fprintf(stderr,
                     "VIOLATION: fault@%llu of program %zu: %zu of %u "
                     "requests answered exactly once\n",
                     static_cast<unsigned long long>(At), PI,
                     A.SliceResponses.size(), Reps);
      }
    }

    // Disarmed, all three must be served again (no sticky state), and
    // the cache's every-hit audit must have found nothing.
    Audit A;
    ServerStats Final;
    std::string Text = serveAndAudit(Opts, Input, /*Threads=*/1, A, &Final);
    Violations += A.Violations;
    if (A.ByStatus["ok"] != Reps) {
      ++Violations;
      std::fprintf(stderr,
                   "VIOLATION: program %zu not served after the sweep: %s\n",
                   PI, Text.c_str());
    }
    checkCacheStats(Opts, Final, Violations);
    if (Opts.Verbose)
      std::fprintf(stderr, "fault sweep program %zu: %llu checkpoints\n", PI,
                   static_cast<unsigned long long>(Total));
  }

  std::printf("jslice_soak: fault sweep — %llu injected serves across %zu "
              "programs, %llu violations\n",
              static_cast<unsigned long long>(FaultRuns), Programs.size(),
              static_cast<unsigned long long>(Violations));
  return Violations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Crash matrix
//===----------------------------------------------------------------------===//

/// Builds a pure slice-request stream (no garbage, no cancels — the
/// chaos is supplied by SIGKILL, and the audit needs the clean
/// "answered exactly once" invariant to be attributable to the
/// supervisor alone).
std::string buildSliceStream(const SoakOptions &Opts,
                             const std::vector<SoakProgram> &Programs,
                             uint64_t &Slices) {
  std::ostringstream Stream;
  Slices = 0;
  for (uint64_t I = 0; I != Opts.Requests; ++I) {
    const SoakProgram &P = Programs[I % Programs.size()];
    ServiceRequest R;
    R.Id = "q" + std::to_string(I);
    R.Program = P.Source;
    const Criterion &C = P.Criteria[I % P.Criteria.size()];
    R.Line = C.Line;
    R.Vars = C.Vars;
    R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                     sizeof(AllAlgorithms[0]))];
    Stream << R.toJson().str() << "\n";
    ++Slices;
  }
  return Stream.str();
}

int runCrashMatrix(const SoakOptions &Opts) {
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  uint64_t Slices = 0;
  std::string Input = buildSliceStream(Opts, Programs, Slices);

  std::istringstream In(Input);
  std::ostringstream Out;
  std::ostringstream Log;
  ServerOptions SOpts;
  SOpts.Threads = Opts.Threads;
  SOpts.IsolateProcess = true;
  SOpts.Super.Workers = Opts.Workers;
  if (Opts.BreakerThreshold)
    SOpts.Super.BreakerThreshold = Opts.BreakerThreshold;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.JournalPath = Opts.JournalPath;
  SOpts.Cache = cacheOptions(Opts);
  Server S(SOpts, Out, Log);

  if (!S.supervisor()) {
    std::fprintf(stderr, "jslice_soak: process isolation unavailable on "
                         "this platform; crash matrix skipped\n");
    return 0;
  }

  // Serve on a worker thread while this thread plays executioner:
  // SIGKILL a random live sandbox worker every ~KillIntervalMs until
  // the stream drains.
  std::atomic<bool> Done{false};
  std::thread Serving([&] {
    S.serve(In);
    Done.store(true, std::memory_order_relaxed);
  });

  uint64_t Rng = Opts.Seed ? Opts.Seed : 0x9e3779b97f4a7c15ull;
  uint64_t Kills = 0;
  while (!Done.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Opts.KillIntervalMs));
    if (Done.load(std::memory_order_relaxed))
      break;
    if (S.supervisor()->chaosKillWorker(Rng) > 0)
      ++Kills;
  }
  Serving.join();

  // Self-healing: every kill must be answered by exactly one respawn.
  // Give the monitor time to work through backoff and any breaker
  // cooldown before holding it to the count.
  for (int I = 0; I != 400 && S.supervisor()->restarts() < Kills; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  uint64_t Restarts = S.supervisor()->restarts();
  uint64_t Crashes = S.supervisor()->crashes();
  S.finish();

  Audit A;
  A.RequireCrashRepro = true;
  {
    std::istringstream Lines(Out.str());
    std::string Line;
    while (std::getline(Lines, Line))
      if (!Line.empty())
        auditLine(Line, A);
  }
  if (Opts.Verbose && !Log.str().empty())
    std::fputs(Log.str().c_str(), stderr);

  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++A.Violations;
      std::fprintf(stderr, "VIOLATION: id %s answered %llu times\n",
                   Id.c_str(), static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Slices) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu requests, %zu distinct responses — "
                 "responses were lost\n",
                 static_cast<unsigned long long>(Slices),
                 A.SliceResponses.size());
  }
  if (Restarts != Kills) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu chaos kills but %llu supervisor "
                 "restarts\n",
                 static_cast<unsigned long long>(Kills),
                 static_cast<unsigned long long>(Restarts));
  }

  std::printf("jslice_soak: crash matrix — %llu requests, %llu kills, "
              "%llu restarts, %llu worker crashes\n",
              static_cast<unsigned long long>(Slices),
              static_cast<unsigned long long>(Kills),
              static_cast<unsigned long long>(Restarts),
              static_cast<unsigned long long>(Crashes));
  for (const auto &[St, N] : A.ByStatus)
    std::printf("               %-18s %llu\n", St.c_str(),
                static_cast<unsigned long long>(N));
  std::printf("               violations         %llu\n",
              static_cast<unsigned long long>(A.Violations));
  return A.Violations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Disk-fault chaos matrix: the journal's I/O seam under injected faults
//===----------------------------------------------------------------------===//

/// What one faulted serve pass produced, beyond the response audit.
struct DiskRun {
  Audit A;
  ServerStats Final;
  bool JournalLost = false;
  bool Aborted = false;
  unsigned Recovered = 0; ///< recover()'s quarantine count.
};

/// One serve pass with the journal's I/O routed through \p Io. Worker
/// threads are forced to 1 so a run's journal traffic is a single
/// bounded stream of I/O ordinals; a small rotation threshold keeps
/// compaction renames inside the swept space.
DiskRun serveDiskChaos(const SoakOptions &Opts, const std::string &Input,
                       const std::string &JPath, JournalIo *Io,
                       JournalFailure Policy,
                       std::atomic<bool> *Stop = nullptr) {
  std::istringstream In(Input);
  std::ostringstream Out, Log;
  ServerOptions SOpts;
  SOpts.Threads = 1;
  SOpts.JournalPath = JPath;
  SOpts.JournalRotateBytes = 2048;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.JournalFailurePolicy = Policy;
  SOpts.JournalIoHook = Io;
  SOpts.Cache = cacheOptions(Opts);
  SOpts.ShutdownFlag = Stop;
  SOpts.AbortFlag = Stop;
  Server S(SOpts, Out, Log);
  DiskRun R;
  R.Recovered = S.recover();
  S.serve(In);
  S.finish();
  R.Final = S.stats();
  R.JournalLost = S.journalLost();
  R.Aborted = S.journalAborted();
  std::istringstream Lines(Out.str());
  std::string Line;
  while (std::getline(Lines, Line))
    if (!Line.empty())
      auditLine(Line, R.A);
  if (Opts.Verbose && !Log.str().empty())
    std::fputs(Log.str().c_str(), stderr);
  return R;
}

/// Exactly-once over one disk-chaos pass: \p Slices requests in, each
/// answered exactly once (served or deterministically refused — the
/// status legality was already checked line by line).
uint64_t diskExactlyOnce(const Audit &A, uint64_t Slices,
                         const std::string &Tag) {
  uint64_t Violations = 0;
  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: %s: id %s answered %llu times\n",
                   Tag.c_str(), Id.c_str(),
                   static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Slices) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: %s: %llu requests, %zu distinct responses — "
                 "responses were lost\n",
                 Tag.c_str(), static_cast<unsigned long long>(Slices),
                 A.SliceResponses.size());
  }
  return Violations;
}

/// Post-run disk forensics shared by every sweep ordinal: the surviving
/// journal must scan clean (no mid-file corruption, no sequence
/// regression — torn tails and quarantined .corrupt files are legal
/// residue), and a reboot on the *real* filesystem must recover without
/// incident: exactly the unmatched begins quarantined, no quarantine
/// write failures, no stale rotation temp left behind.
uint64_t auditDiskState(const SoakOptions &Opts, const std::string &JPath,
                        const std::string &Tag) {
  uint64_t Violations = 0;
  JournalScan Scan = scanJournalDetailed(JPath);
  if (Scan.Exists && (Scan.CorruptRecords || Scan.SeqRegressions)) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: %s: surviving journal has %llu corrupt "
                 "records, %llu seq regressions\n",
                 Tag.c_str(),
                 static_cast<unsigned long long>(Scan.CorruptRecords),
                 static_cast<unsigned long long>(Scan.SeqRegressions));
  }
  uint64_t InFlight = Scan.Exists ? Scan.InFlight.size() : 0;

  std::ostringstream Out, Log;
  ServerOptions BootOpts;
  BootOpts.Threads = 1;
  BootOpts.JournalPath = JPath;
  BootOpts.QuarantineDir = Opts.QuarantineDir;
  BootOpts.Cache = cacheOptions(Opts);
  Server Boot(BootOpts, Out, Log);
  unsigned Quarantined = Boot.recover();
  Boot.finish();
  ServerStats BS = Boot.stats();
  if (Quarantined != InFlight) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: %s: journal held %llu in-flight begins but "
                 "reboot quarantined %u\n",
                 Tag.c_str(), static_cast<unsigned long long>(InFlight),
                 Quarantined);
  }
  if (BS.QuarantineFailures) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: %s: reboot dropped %llu poisons it could "
                 "not quarantine\n",
                 Tag.c_str(),
                 static_cast<unsigned long long>(BS.QuarantineFailures));
  }
  std::error_code Ec;
  if (std::filesystem::exists(JPath + ".rotate", Ec)) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: %s: stale rotation temp survived the "
                 "reboot's open()\n",
                 Tag.c_str());
  }
  return Violations;
}

int runDiskChaos(const SoakOptions &CliOpts) {
  SoakOptions Opts = CliOpts;
  Opts.Programs = std::min(Opts.Programs, 6u);
  // Keyed off the quarantine dir so concurrent ctest variants (the
  // 1-shard and 4-shard runs share a working directory) never collide.
  const std::string JPath = Opts.QuarantineDir + ".journal.jsonl";
  std::error_code Ec;
  std::filesystem::remove_all(Opts.QuarantineDir, Ec);

  // A small fixed script, reserved to --requests for CI scaling: the
  // per-ordinal repetition is what costs, not the script length.
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  unsigned ScriptN = static_cast<unsigned>(
      std::max<uint64_t>(8, std::min<uint64_t>(32, Opts.Requests / 50)));
  std::ostringstream Script;
  uint64_t Slices = 0;
  for (unsigned I = 0; I != ScriptN; ++I) {
    const SoakProgram &P = Programs[I % Programs.size()];
    ServiceRequest R;
    R.Id = "d" + std::to_string(I);
    R.Program = P.Source;
    const Criterion &C = P.Criteria[I % P.Criteria.size()];
    R.Line = C.Line;
    R.Vars = C.Vars;
    R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                     sizeof(AllAlgorithms[0]))];
    Script << R.toJson().str() << "\n";
    ++Slices;
  }
  std::string Input = Script.str();

  uint64_t Violations = 0, FaultRuns = 0, InjectedRuns = 0;

  const JournalFault Kinds[] = {
      JournalFault::ShortWrite,        JournalFault::WriteEio,
      JournalFault::WriteEnospc,       JournalFault::FlushFail,
      JournalFault::FsyncFail,         JournalFault::CrashBeforeRename,
      JournalFault::CrashAfterRename,
  };
  constexpr size_t NKinds = sizeof(Kinds) / sizeof(Kinds[0]);

  // One clean pass sizes each kind's ordinal space.
  uint64_t Totals[NKinds] = {};
  {
    std::filesystem::remove(JPath, Ec);
    FaultyJournalIo Io;
    DiskRun R =
        serveDiskChaos(Opts, Input, JPath, &Io, JournalFailure::Shed);
    Violations += R.A.Violations;
    Violations += diskExactlyOnce(R.A, Slices, "counting pass");
    for (size_t K = 0; K != NKinds; ++K)
      Totals[K] = Io.observed(Kinds[K]);
  }

  for (size_t K = 0; K != NKinds; ++K) {
    uint64_t Total = Totals[K];
    if (!Total) {
      ++Violations;
      std::fprintf(stderr,
                   "VIOLATION: the clean pass performed no %s I/O — the "
                   "sweep proved nothing for that fault\n",
                   journalFaultName(Kinds[K]));
      continue;
    }
    // Sample ~10 ordinals per kind; ordinal 1 and the last always run.
    uint64_t Stride = std::max<uint64_t>(1, Total / 10);
    for (uint64_t At = 1; At <= Total; At += Stride) {
      ++FaultRuns;
      std::string Tag = std::string(journalFaultName(Kinds[K])) + "@" +
                        std::to_string(At);
      std::filesystem::remove(JPath, Ec);
      std::filesystem::remove(JPath + ".rotate", Ec);
      std::filesystem::remove(JPath + ".corrupt", Ec);
      std::filesystem::remove_all(Opts.QuarantineDir, Ec);

      FaultyJournalIo Io;
      Io.arm(Kinds[K], At);
      DiskRun R =
          serveDiskChaos(Opts, Input, JPath, &Io, JournalFailure::Shed);
      if (Io.injected())
        ++InjectedRuns;
      Violations += R.A.Violations;
      Violations += diskExactlyOnce(R.A, Slices, Tag);
      Violations += auditDiskState(Opts, JPath, Tag);
      if (Opts.Verbose)
        std::fprintf(stderr,
                     "disk chaos %s: injected=%d lost=%d shed=%llu\n",
                     Tag.c_str(), Io.injected() ? 1 : 0,
                     R.JournalLost ? 1 : 0,
                     static_cast<unsigned long long>(
                         R.A.ByStatus.count("shed")
                             ? R.A.ByStatus.at("shed")
                             : 0));
    }
  }
  if (FaultRuns && !InjectedRuns) {
    ++Violations;
    std::fprintf(stderr, "VIOLATION: no armed fault ever fired — the "
                         "sweep proved nothing\n");
  }

  // The --journal-failure policy triad under a disk that stays dead
  // (every write fails, so the very first append latches the loss).
  {
    std::filesystem::remove(JPath, Ec);
    FaultyJournalIo Io;
    Io.armEvery(JournalFault::WriteEio, 1);
    DiskRun R =
        serveDiskChaos(Opts, Input, JPath, &Io, JournalFailure::Shed);
    Violations += R.A.Violations;
    Violations += diskExactlyOnce(R.A, Slices, "policy shed");
    if (!R.JournalLost || !R.Final.JournalLost) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: policy shed: dead disk never "
                           "latched journal_lost\n");
    }
    ServerStats Final = R.Final;
    if (Final.ShedByCause["journal-failed"] != Slices) {
      ++Violations;
      std::fprintf(stderr,
                   "VIOLATION: policy shed: %llu of %llu requests refused "
                   "as journal-failed — the rest were served with no "
                   "journal record\n",
                   static_cast<unsigned long long>(
                       Final.ShedByCause["journal-failed"]),
                   static_cast<unsigned long long>(Slices));
    }
  }
  {
    std::filesystem::remove(JPath, Ec);
    FaultyJournalIo Io;
    Io.armEvery(JournalFault::WriteEio, 1);
    DiskRun R =
        serveDiskChaos(Opts, Input, JPath, &Io, JournalFailure::Degrade);
    Violations += R.A.Violations;
    Violations += diskExactlyOnce(R.A, Slices, "policy degrade");
    if (!R.JournalLost || !R.Final.JournalLost) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: policy degrade: dead disk never "
                           "latched journal_lost\n");
    }
    if (R.A.ByStatus.count("shed")) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: policy degrade: requests were "
                           "shed instead of served\n");
    }
  }
  {
    std::filesystem::remove(JPath, Ec);
    FaultyJournalIo Io;
    Io.armEvery(JournalFault::WriteEio, 1);
    std::atomic<bool> Stop{false};
    DiskRun R = serveDiskChaos(Opts, Input, JPath, &Io,
                               JournalFailure::Abort, &Stop);
    Violations += R.A.Violations;
    if (!R.Aborted || !Stop.load(std::memory_order_relaxed)) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: policy abort: dead disk never "
                           "tripped the abort flag\n");
    }
    for (const auto &[Id, N] : R.A.SliceResponses)
      if (N != 1) {
        ++Violations;
        std::fprintf(stderr,
                     "VIOLATION: policy abort: id %s answered %llu "
                     "times\n",
                     Id.c_str(), static_cast<unsigned long long>(N));
      }
    if (R.A.SliceResponses.empty() ||
        R.A.SliceResponses.size() >= Slices) {
      ++Violations;
      std::fprintf(stderr,
                   "VIOLATION: policy abort: %zu of %llu requests "
                   "answered — abort must answer the failing request and "
                   "then stop accepting\n",
                   R.A.SliceResponses.size(),
                   static_cast<unsigned long long>(Slices));
    }
  }

#ifdef JSLICE_HAVE_POSIX_PROCESS
  // The sharded transport pass: journal healthy at first, then the
  // disk dies under live TCP load (--shards reactor shards). Degrade
  // policy: every request still answered exactly once, and {"health"}
  // must honestly report the loss.
  {
    std::filesystem::remove(JPath, Ec);
    FaultyJournalIo Io;
    ServerOptions SOpts;
    SOpts.Threads = Opts.Threads;
    SOpts.JournalPath = JPath;
    SOpts.JournalRotateBytes = 8192;
    SOpts.QuarantineDir = Opts.QuarantineDir;
    SOpts.JournalFailurePolicy = JournalFailure::Degrade;
    SOpts.JournalIoHook = &Io;
    SOpts.Cache = cacheOptions(Opts);
    std::ostringstream Unused, Log;
    Server S(SOpts, Unused, Log);
    S.recover();
    TcpServerOptions TOpts;
    TOpts.Shards = Opts.Shards;
    TcpServer T(S, TOpts, Log);
    std::string Err;
    if (!T.start(Err)) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: disk chaos TCP pass cannot "
                           "listen: %s\n",
                   Err.c_str());
    } else {
      std::thread Loop([&] { T.run(); });
      uint16_t Port = T.port();

      uint64_t NetReq = std::min<uint64_t>(Opts.Requests, 400);
      unsigned NClients = Opts.NetClients ? Opts.NetClients : 1;
      std::mutex AuditM;
      std::vector<std::string> Responses;
      uint64_t Lost = 0;
      std::vector<std::thread> Clients;
      for (unsigned CI = 0; CI != NClients; ++CI) {
        Clients.emplace_back([&, CI] {
          ClientOptions CliOpt;
          CliOpt.Port = Port;
          CliOpt.MaxAttempts = 8;
          CliOpt.ResponseTimeoutMs = 60000;
          CliOpt.JitterSeed = Opts.Seed + CI + 1;
          ClientConnection Conn(CliOpt);
          std::vector<std::string> Local;
          uint64_t LocalLost = 0;
          for (uint64_t I = CI; I < NetReq; I += NClients) {
            const SoakProgram &P = Programs[I % Programs.size()];
            ServiceRequest R;
            R.Id = "t" + std::to_string(I);
            R.Program = P.Source;
            const Criterion &C = P.Criteria[I % P.Criteria.size()];
            R.Line = C.Line;
            R.Vars = C.Vars;
            ClientResult Res = Conn.request(R.toJson().str());
            if (!Res.Ok) {
              ++LocalLost;
              std::lock_guard<std::mutex> Lock(AuditM);
              std::fprintf(stderr,
                           "VIOLATION: request lost under disk chaos "
                           "(%s)\n",
                           Res.TransportError.c_str());
            } else {
              Local.push_back(std::move(Res.Response));
            }
          }
          std::lock_guard<std::mutex> Lock(AuditM);
          for (auto &L : Local)
            Responses.push_back(std::move(L));
          Lost += LocalLost;
        });
      }

      // Let a few records land cleanly, then kill the disk under load.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      Io.armEvery(JournalFault::FsyncFail, 1);
      for (auto &C : Clients)
        C.join();

      // The stream may have drained before the armed fault ever fired;
      // force appends until it does, so the health assertion below is
      // never vacuous.
      {
        ClientOptions CliOpt;
        CliOpt.Port = Port;
        CliOpt.MaxAttempts = 8;
        ClientConnection Conn(CliOpt);
        for (int I = 0; I != 50 && !Io.injected(); ++I) {
          ServiceRequest R;
          R.Id = "tx" + std::to_string(I);
          R.Program = "read(a);\nwrite(a);\n";
          R.Line = 2;
          R.Vars = {"a"};
          (void)Conn.request(R.toJson().str());
        }
        ClientResult Health = Conn.request("{\"health\": true}");
        bool Degraded =
            Health.Ok &&
            Health.Response.find("\"degraded\":true") != std::string::npos &&
            Health.Response.find("\"journal\":\"lost\"") !=
                std::string::npos;
        if (!Degraded) {
          ++Violations;
          std::fprintf(stderr,
                       "VIOLATION: journal died under load but health "
                       "says: %s\n",
                       Health.Ok ? Health.Response.c_str()
                                 : Health.TransportError.c_str());
        }
      }

      T.requestStop();
      Loop.join();
      S.finish();
      if (!S.journalLost()) {
        ++Violations;
        std::fprintf(stderr, "VIOLATION: TCP pass never latched "
                             "journal_lost despite a dead fsync\n");
      }

      Audit A;
      for (const std::string &L : Responses)
        auditLine(L, A);
      Violations += A.Violations + Lost;
      Violations += diskExactlyOnce(A, NetReq, "tcp degrade pass");
      if (A.ByStatus.count("shed")) {
        ++Violations;
        std::fprintf(stderr, "VIOLATION: tcp degrade pass shed requests "
                             "instead of serving\n");
      }
    }
  }
#endif

  std::filesystem::remove(JPath, Ec);
  std::filesystem::remove(JPath + ".rotate", Ec);
  std::filesystem::remove(JPath + ".corrupt", Ec);

  std::printf("jslice_soak: disk chaos — %llu faulted serves over %llu "
              "fault kinds (%llu injected), %u-request script, %llu "
              "violations\n",
              static_cast<unsigned long long>(FaultRuns),
              static_cast<unsigned long long>(NKinds),
              static_cast<unsigned long long>(InjectedRuns), ScriptN,
              static_cast<unsigned long long>(Violations));
  return Violations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Network soak: the audits over TCP, through the chaos proxy
//===----------------------------------------------------------------------===//

#ifdef JSLICE_HAVE_POSIX_PROCESS

/// The request lines for the network soak. Volume mode mirrors the
/// stdin soak (garbage lines, starved budgets) minus cancellations —
/// cancel/response races belong to the in-process soak; over the wire
/// the audit needs "one line in, one terminal status out" to be exact.
/// Crash-matrix mode sends the pure slice stream, same as the stdin
/// matrix.
std::vector<std::string> buildNetLines(const SoakOptions &Opts,
                                       const std::vector<SoakProgram> &Programs,
                                       uint64_t &Slices, uint64_t &BadLines) {
  std::vector<std::string> Lines;
  Slices = BadLines = 0;
  for (uint64_t I = 0; I != Opts.Requests; ++I) {
    if (!Opts.CrashMatrix && I % 97 == 96) {
      Lines.push_back(I % 2 ? "{\"id\": 42}" : "{not json");
      ++BadLines;
      continue;
    }
    const SoakProgram &P = Programs[I % Programs.size()];
    ServiceRequest R;
    R.Id = "q" + std::to_string(I);
    R.Program = P.Source;
    const Criterion &C = P.Criteria[I % P.Criteria.size()];
    R.Line = C.Line;
    R.Vars = C.Vars;
    R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                     sizeof(AllAlgorithms[0]))];
    if (!Opts.CrashMatrix) {
      if (I % 7 == 3)
        R.MaxSteps = 200 + (I % 5) * 100;
      if (I % 13 == 6)
        R.BudgetMs = 1;
    }
    Lines.push_back(R.toJson().str());
    ++Slices;
  }
  return Lines;
}

int runNetSoak(const SoakOptions &Opts) {
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  uint64_t Slices = 0, BadLines = 0;
  std::vector<std::string> Lines =
      buildNetLines(Opts, Programs, Slices, BadLines);

  ServerOptions SOpts;
  SOpts.Threads = Opts.Threads;
  SOpts.IsolateProcess = Opts.CrashMatrix ? true : Opts.IsolateProcess;
  SOpts.Super.Workers = Opts.Workers;
  if (Opts.BreakerThreshold)
    SOpts.Super.BreakerThreshold = Opts.BreakerThreshold;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.JournalPath = Opts.JournalPath;
  SOpts.Cache = cacheOptions(Opts);
  std::ostringstream Unused; // TCP mode routes responses via sinks.
  std::ostringstream Log;
  Server S(SOpts, Unused, Log);
  S.recover();

  if (Opts.CrashMatrix && !S.supervisor()) {
    std::fprintf(stderr, "jslice_soak: process isolation unavailable on "
                         "this platform; net crash matrix skipped\n");
    return 0;
  }

  TcpServerOptions TOpts;
  TOpts.IdleTimeoutMs = 60000; // Proxy stalls must not read as idleness.
  TOpts.Shards = Opts.Shards;
  TcpServer T(S, TOpts, Log);
  std::string Err;
  if (!T.start(Err)) {
    std::fprintf(stderr, "jslice_soak: cannot start TCP server: %s\n",
                 Err.c_str());
    return 1;
  }
  uint16_t ServerPort = T.port();
  std::thread Loop([&] { T.run(); });

  ChaosOptions COpts;
  COpts.UpstreamPort = ServerPort;
  COpts.ResetPermille = 25;
  COpts.TruncatePermille = 25;
  COpts.StallPermille = 5;
  COpts.StallMs = 200;
  COpts.DelayPermille = 50;
  COpts.DelayMs = 2;
  COpts.Seed = Opts.Seed;
  ChaosProxy Proxy(COpts);
  if (!Proxy.start(Err)) {
    std::fprintf(stderr, "jslice_soak: cannot start chaos proxy: %s\n",
                 Err.c_str());
    T.requestStop();
    Loop.join();
    S.finish();
    return 1;
  }

  // Chaos clients: partition the stream round-robin, pump it through
  // the proxy with aggressive retries. A request whose fate stays
  // unknown after all retries counts as lost — the acceptance bar is
  // zero.
  unsigned NClients = Opts.NetClients ? Opts.NetClients : 1;
  std::mutex AuditM;
  std::vector<std::string> Responses;
  Responses.reserve(Lines.size());
  uint64_t Lost = 0, Retried = 0, Reconnects = 0;
  std::vector<std::thread> Clients;
  for (unsigned CI = 0; CI != NClients; ++CI) {
    Clients.emplace_back([&, CI] {
      ClientOptions CliOpts;
      CliOpts.Port = Proxy.port();
      CliOpts.MaxAttempts = 64;
      CliOpts.BackoffBaseMs = 2;
      CliOpts.BackoffCapMs = 100;
      CliOpts.ResponseTimeoutMs = 60000;
      CliOpts.JitterSeed = Opts.Seed + CI + 1;
      ClientConnection Conn(CliOpts);
      std::vector<std::string> Local;
      uint64_t LocalLost = 0, LocalRetried = 0;
      for (size_t I = CI; I < Lines.size(); I += NClients) {
        ClientResult R = Conn.request(Lines[I]);
        if (R.Attempts > 1)
          ++LocalRetried;
        if (!R.Ok) {
          ++LocalLost;
          std::lock_guard<std::mutex> Lock(AuditM);
          std::fprintf(stderr,
                       "VIOLATION: request lost after %u attempts (%s): "
                       "%.80s\n",
                       R.Attempts, R.TransportError.c_str(),
                       Lines[I].c_str());
        } else {
          Local.push_back(std::move(R.Response));
        }
      }
      std::lock_guard<std::mutex> Lock(AuditM);
      for (auto &L : Local)
        Responses.push_back(std::move(L));
      Lost += LocalLost;
      Retried += LocalRetried;
      Reconnects += Conn.reconnects();
    });
  }

  // The well-behaved control connection: wired *directly* to the
  // server, no proxy, no retries. Containment says the chaos next door
  // must be invisible here — no transport errors ever; in volume mode
  // every response is a clean `ok` (in crash-matrix mode SIGKILL can
  // legally land on the worker running a control request, so only
  // transport health and status legality are asserted).
  std::atomic<bool> ChaosDone{false};
  uint64_t ControlRequests = 0, ControlErrors = 0;
  std::thread Control([&] {
    ClientOptions CliOpts;
    CliOpts.Port = ServerPort;
    CliOpts.MaxAttempts = 1;
    CliOpts.ResponseTimeoutMs = 60000;
    ClientConnection Conn(CliOpts);
    uint64_t I = 0;
    while (!ChaosDone.load(std::memory_order_relaxed)) {
      ServiceRequest R;
      R.Id = "ctl" + std::to_string(I++);
      R.Program = "read(a);\nwrite(a);\n";
      R.Line = 2;
      R.Vars = {"a"};
      ClientResult Res = Conn.request(R.toJson().str());
      ++ControlRequests;
      bool Good =
          Res.Ok &&
          (Opts.CrashMatrix
               ? Res.Response.find("\"status\":") != std::string::npos
               : Res.Response.find("\"status\":\"ok\"") !=
                     std::string::npos);
      if (!Good) {
        ++ControlErrors;
        std::lock_guard<std::mutex> Lock(AuditM);
        std::fprintf(stderr,
                     "VIOLATION: well-behaved connection hurt by chaos "
                     "next door: %s\n",
                     Res.Ok ? Res.Response.c_str()
                            : Res.TransportError.c_str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Crash matrix: the executioner, same cadence as the stdin matrix.
  uint64_t Kills = 0;
  std::thread Killer;
  if (Opts.CrashMatrix) {
    Killer = std::thread([&] {
      uint64_t Rng = Opts.Seed ? Opts.Seed : 0x9e3779b97f4a7c15ull;
      while (!ChaosDone.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(Opts.KillIntervalMs));
        if (ChaosDone.load(std::memory_order_relaxed))
          break;
        if (S.supervisor()->chaosKillWorker(Rng) > 0)
          ++Kills;
      }
    });
  }

  for (auto &C : Clients)
    C.join();
  ChaosDone.store(true, std::memory_order_relaxed);
  Control.join();
  if (Killer.joinable())
    Killer.join();

  uint64_t Restarts = 0;
  if (Opts.CrashMatrix) {
    for (int I = 0; I != 400 && S.supervisor()->restarts() < Kills; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    Restarts = S.supervisor()->restarts();
  }

  // Satellite assertion: the in-band stats line carries the transport
  // counters, so none of this needed stderr scraping.
  uint64_t StatsViolations = 0;
  std::optional<JsonValue> StatsJson;
  {
    ClientOptions CliOpts;
    CliOpts.Port = ServerPort;
    CliOpts.MaxAttempts = 3;
    ClientConnection Conn(CliOpts);
    ClientResult Res = Conn.request("{\"stats\": true}");
    if (Res.Ok)
      StatsJson = JsonValue::parse(Res.Response);
    const JsonValue *Stats =
        StatsJson && StatsJson->isObject() ? StatsJson->find("stats")
                                           : nullptr;
    const JsonValue *Transport = Stats ? Stats->find("transport") : nullptr;
    const JsonValue *Accepted =
        Transport ? Transport->find("accepted") : nullptr;
    if (!Accepted || !Accepted->isNumber() || Accepted->asInt() < 1) {
      ++StatsViolations;
      std::fprintf(stderr, "VIOLATION: stats reply missing live transport "
                           "counters: %s\n",
                   Res.Ok ? Res.Response.c_str()
                          : Res.TransportError.c_str());
    }
    if (SOpts.IsolateProcess && (!Stats || !Stats->find("supervisor"))) {
      ++StatsViolations;
      std::fprintf(stderr, "VIOLATION: stats reply missing supervisor "
                           "counters in process mode\n");
    }
    if (Opts.CacheEnabled && (!Stats || !Stats->find("cache"))) {
      ++StatsViolations;
      std::fprintf(stderr, "VIOLATION: stats reply missing cache "
                           "counters with the cache enabled\n");
    }
  }

  Proxy.stop();
  T.requestStop();
  Loop.join();
  S.finish();

  Audit A;
  A.RequireCrashRepro = Opts.CrashMatrix;
  for (const std::string &Line : Responses)
    auditLine(Line, A);
  A.Violations += Lost + ControlErrors + StatsViolations;

  // Exactly one client-visible terminal status per request id. The
  // retry contract makes this non-trivial: a torn response means the
  // request may run twice server-side, but the client must still end
  // with one verdict.
  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++A.Violations;
      std::fprintf(stderr, "VIOLATION: id %s answered %llu times\n",
                   Id.c_str(), static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Slices) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu slice requests, %zu distinct terminal "
                 "statuses — responses were lost\n",
                 static_cast<unsigned long long>(Slices),
                 A.SliceResponses.size());
  }
  if (Opts.CrashMatrix && Restarts != Kills) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu chaos kills but %llu supervisor "
                 "restarts\n",
                 static_cast<unsigned long long>(Kills),
                 static_cast<unsigned long long>(Restarts));
  }

  if (Opts.Verbose && !Log.str().empty())
    std::fputs(Log.str().c_str(), stderr);

  ChaosStats CS = Proxy.stats();
  std::printf("jslice_soak: net soak — %llu requests (%llu slices, %llu bad "
              "lines) over %u clients through chaos (%llu conns, %llu "
              "delays, %llu truncations, %llu resets, %llu stalls)\n",
              static_cast<unsigned long long>(Slices + BadLines),
              static_cast<unsigned long long>(Slices),
              static_cast<unsigned long long>(BadLines), NClients,
              static_cast<unsigned long long>(CS.Connections),
              static_cast<unsigned long long>(CS.Delays),
              static_cast<unsigned long long>(CS.Truncations),
              static_cast<unsigned long long>(CS.Resets),
              static_cast<unsigned long long>(CS.Stalls));
  std::printf("               retried requests   %llu (%llu reconnects)\n",
              static_cast<unsigned long long>(Retried),
              static_cast<unsigned long long>(Reconnects));
  std::printf("               control requests   %llu (%llu errors)\n",
              static_cast<unsigned long long>(ControlRequests),
              static_cast<unsigned long long>(ControlErrors));
  if (Opts.CrashMatrix)
    std::printf("               kills/restarts     %llu/%llu\n",
                static_cast<unsigned long long>(Kills),
                static_cast<unsigned long long>(Restarts));
  for (const auto &[St, N] : A.ByStatus)
    std::printf("               %-18s %llu\n", St.c_str(),
                static_cast<unsigned long long>(N));
  std::printf("               violations         %llu\n",
              static_cast<unsigned long long>(A.Violations));
  return A.Violations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Upgrade matrix: hot-restart chaos over a real jslice_serve dynasty
//===----------------------------------------------------------------------===//

/// What the stderr scraper has learned about the serve process tree.
/// The matrix drives real processes through exec boundaries, so the
/// generation log lines (jslice_serve.cpp's handoff protocol) are the
/// only source of truth for who is leader and who is still warming up.
struct MatrixState {
  std::mutex M;
  uint16_t Port = 0;     ///< From "listening on HOST:PORT".
  long LeaderPid = -1;   ///< Serving generation.
  long PendingPid = -1;  ///< Spawned successor, not yet ready.
  uint64_t Spawns = 0;   ///< "spawning generation" events.
  uint64_t Handoffs = 0; ///< "ready; draining" events.
  uint64_t Rollbacks = 0;
  uint64_t Refusals = 0; ///< Both refusal flavours.
};

/// Parses one serve stderr line into the matrix state. The anchors are
/// the exact formats jslice_serve prints; the announce line
/// ("generation G pid P") is adopted as leader only when there is no
/// leader — a successor announces too, before it is ready, and must
/// not be trusted until its "ready; draining" line.
void scrapeMatrixLine(const std::string &Line, MatrixState &St) {
  std::lock_guard<std::mutex> Lock(St.M);
  size_t At = Line.find("listening on ");
  if (At != std::string::npos) {
    size_t Colon = Line.rfind(':');
    if (Colon != std::string::npos)
      St.Port = static_cast<uint16_t>(
          std::strtoul(Line.c_str() + Colon + 1, nullptr, 10));
    return;
  }
  At = Line.find("spawning generation ");
  if (At != std::string::npos) {
    size_t Pid = Line.find("(pid ", At);
    if (Pid != std::string::npos)
      St.PendingPid = std::strtol(Line.c_str() + Pid + 5, nullptr, 10);
    ++St.Spawns;
    return;
  }
  if (Line.find("ready; draining generation ") != std::string::npos) {
    if (St.PendingPid > 0)
      St.LeaderPid = St.PendingPid;
    St.PendingPid = -1;
    ++St.Handoffs;
    return;
  }
  if (Line.find("rolling back to generation ") != std::string::npos) {
    St.PendingPid = -1;
    ++St.Rollbacks;
    return;
  }
  if (Line.find("upgrade already in progress") != std::string::npos ||
      Line.find("upgrade refused: shutdown in progress") !=
          std::string::npos) {
    ++St.Refusals;
    return;
  }
  At = Line.find("generation ");
  if (At != std::string::npos && Line.find("(pid") == std::string::npos) {
    size_t Pid = Line.find(" pid ", At);
    if (Pid != std::string::npos && St.LeaderPid < 0)
      St.LeaderPid = std::strtol(Line.c_str() + Pid + 5, nullptr, 10);
  }
}

/// fork/exec one serve generation with its stderr on the dynasty pipe.
/// Returns the child pid, or -1. The read end is closed in the child
/// so the scraper's EOF tracks the last process holding the write end.
long spawnServe(const std::vector<std::string> &Args, int StderrW,
                int StderrR) {
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  pid_t Pid = ::fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    ::dup2(StderrW, 2);
    ::close(StderrR);
    ::execv(Argv[0], Argv.data());
    _exit(127);
  }
  return Pid;
}

/// Polls \p Pred every 20ms until it holds or \p TimeoutMs passes,
/// reaping dead direct children along the way so a drained old
/// generation never lingers as a zombie.
bool waitMatrix(const std::function<bool()> &Pred, uint64_t TimeoutMs) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    while (::waitpid(-1, nullptr, WNOHANG) > 0)
      ;
    if (Pred())
      return true;
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// True once \p Pid no longer exists. A successor generation is not
/// this process's child, so waitpid cannot see it — kill(pid, 0) can.
bool processGone(long Pid) {
  return ::kill(static_cast<pid_t>(Pid), 0) != 0 && errno == ESRCH;
}

int runUpgradeMatrix(const SoakOptions &CliOpts) {
  SoakOptions Opts = CliOpts;
  if (Opts.ServeBin.empty()) {
    std::fprintf(stderr,
                 "error: --upgrade-matrix requires --serve-bin PATH\n");
    return 2;
  }
  if (Opts.JournalPath.empty())
    Opts.JournalPath = "upgrade-matrix-journal.jsonl";

  // A stale journal would make generation 1 quarantine last run's
  // in-flight records and skew this run's audit.
  std::error_code Ec;
  std::filesystem::remove(Opts.JournalPath, Ec);
  std::filesystem::remove(Opts.JournalPath + ".rotate", Ec);
  std::filesystem::remove_all(Opts.QuarantineDir, Ec);

  // One pipe for every generation: successors inherit the write end as
  // fd 2 through exec, so the scraper sees the whole dynasty and EOF
  // means the last generation is gone.
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    std::fprintf(stderr, "error: cannot create the dynasty stderr pipe\n");
    return 1;
  }

  MatrixState St;
  std::thread Scraper([&] {
    std::string Partial;
    char Buf[4096];
    for (;;) {
      int64_t N = readSome(Pipe[0], Buf, sizeof(Buf));
      if (N <= 0)
        break;
      for (int64_t I = 0; I != N; ++I) {
        if (Buf[I] != '\n') {
          Partial.push_back(Buf[I]);
          continue;
        }
        scrapeMatrixLine(Partial, St);
        if (Opts.Verbose)
          std::fprintf(stderr, "%s\n", Partial.c_str());
        Partial.clear();
      }
    }
  });

  // --ready-delay-ms keeps every successor in a killable pre-ready
  // window long enough for the chaos scenarios to land their signals
  // deterministically; serve propagates it across generations.
  std::vector<std::string> BaseArgs = {
      Opts.ServeBin,   "--listen",     "127.0.0.1:0",
      "--journal",     Opts.JournalPath, "--quarantine",
      Opts.QuarantineDir, "--ready-delay-ms", "300"};
  if (Opts.Shards) {
    BaseArgs.push_back("--shards");
    BaseArgs.push_back(std::to_string(Opts.Shards));
  }

  auto snapshot = [&](MatrixState &Out) {
    std::lock_guard<std::mutex> Lock(St.M);
    Out.Port = St.Port;
    Out.LeaderPid = St.LeaderPid;
    Out.PendingPid = St.PendingPid;
    Out.Spawns = St.Spawns;
    Out.Handoffs = St.Handoffs;
    Out.Rollbacks = St.Rollbacks;
    Out.Refusals = St.Refusals;
  };

  auto cleanupFail = [&](const char *Why) {
    std::fprintf(stderr, "VIOLATION: %s\n", Why);
    MatrixState S;
    snapshot(S);
    if (S.LeaderPid > 0)
      ::kill(static_cast<pid_t>(S.LeaderPid), SIGKILL);
    if (S.PendingPid > 0)
      ::kill(static_cast<pid_t>(S.PendingPid), SIGKILL);
    ::close(Pipe[1]);
    Scraper.join();
    ::close(Pipe[0]);
    while (::waitpid(-1, nullptr, WNOHANG) > 0)
      ;
    return 1;
  };

  if (spawnServe(BaseArgs, Pipe[1], Pipe[0]) < 0)
    return cleanupFail("cannot spawn generation 1");
  if (!waitMatrix(
          [&] {
            std::lock_guard<std::mutex> Lock(St.M);
            return St.Port != 0 && St.LeaderPid > 0;
          },
          15000))
    return cleanupFail("generation 1 never announced itself");

  uint16_t Port;
  {
    std::lock_guard<std::mutex> Lock(St.M);
    Port = St.Port;
  }

  // Client load: every request retried past transport gaps (a respawn
  // window has no listener at all) and past drain-time sheds, until it
  // lands one terminal status. Ids keep flowing past --requests until
  // the scenario loop finishes, so every handoff happens under load.
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  std::atomic<bool> ScenariosDone{false};
  std::atomic<uint64_t> NextId{0};
  std::mutex AuditM;
  std::vector<std::string> Responses;
  uint64_t Sent = 0, Lost = 0, Retried = 0;
  unsigned NClients = Opts.NetClients ? Opts.NetClients : 1;
  std::vector<std::thread> Clients;
  for (unsigned CI = 0; CI != NClients; ++CI) {
    Clients.emplace_back([&, CI] {
      ClientOptions CliOpt;
      CliOpt.Port = Port;
      CliOpt.MaxAttempts = 64;
      CliOpt.BackoffBaseMs = 2;
      CliOpt.BackoffCapMs = 100;
      CliOpt.ResponseTimeoutMs = 60000;
      CliOpt.JitterSeed = Opts.Seed + CI + 1;
      ClientConnection Conn(CliOpt);
      std::vector<std::string> Local;
      uint64_t LocalSent = 0, LocalLost = 0, LocalRetried = 0;
      for (;;) {
        uint64_t I = NextId.fetch_add(1, std::memory_order_relaxed);
        if (I >= Opts.Requests &&
            ScenariosDone.load(std::memory_order_relaxed))
          break;
        const SoakProgram &P = Programs[I % Programs.size()];
        ServiceRequest R;
        R.Id = "q" + std::to_string(I);
        R.Program = P.Source;
        const Criterion &C = P.Criteria[I % P.Criteria.size()];
        R.Line = C.Line;
        R.Vars = C.Vars;
        R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                         sizeof(AllAlgorithms[0]))];
        std::string Line = R.toJson().str();
        ++LocalSent;
        bool Answered = false, WasRetried = false;
        for (unsigned Try = 0; Try != 120 && !Answered; ++Try) {
          ClientResult Res = Conn.request(Line);
          if (Try || Res.Attempts > 1)
            WasRetried = true;
          if (!Res.Ok) {
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
            continue;
          }
          if (Res.Response.find("\"status\":\"shed\"") !=
              std::string::npos) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            continue;
          }
          Local.push_back(std::move(Res.Response));
          Answered = true;
        }
        if (WasRetried)
          ++LocalRetried;
        if (!Answered) {
          ++LocalLost;
          std::lock_guard<std::mutex> Lock(AuditM);
          std::fprintf(stderr,
                       "VIOLATION: request lost across the upgrade "
                       "matrix: %.80s\n",
                       Line.c_str());
        }
      }
      std::lock_guard<std::mutex> Lock(AuditM);
      for (auto &L : Local)
        Responses.push_back(std::move(L));
      Sent += LocalSent;
      Lost += LocalLost;
      Retried += LocalRetried;
    });
  }

  // The chaos driver: cycle the five scenarios until the handoff
  // target is met. Scenario 2 (successor killed pre-ready) and 3
  // (SIGTERM wins the race) do not produce a handoff; they count as
  // rollback / restart coverage instead.
  auto leaderPid = [&] {
    std::lock_guard<std::mutex> Lock(St.M);
    return St.LeaderPid;
  };
  uint64_t Restarts = 0, MatrixViolations = 0;
  for (uint64_t Iter = 0;; ++Iter) {
    MatrixState S;
    snapshot(S);
    if (S.Handoffs >= Opts.Upgrades)
      break;
    long Leader = S.LeaderPid;
    if (Leader <= 0) {
      ++MatrixViolations;
      std::fprintf(stderr, "VIOLATION: no leader to drive at iteration "
                           "%llu\n",
                   static_cast<unsigned long long>(Iter));
      break;
    }
    switch (Iter % 5) {
    case 0: { // Clean SIGUSR2 handoff.
      ::kill(static_cast<pid_t>(Leader), SIGUSR2);
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                return St.Handoffs > S.Handoffs;
              },
              60000)) {
        ++MatrixViolations;
        std::fprintf(stderr,
                     "VIOLATION: clean upgrade never became ready\n");
      }
      break;
    }
    case 1: { // SIGKILL the old generation mid-drain.
      ::kill(static_cast<pid_t>(Leader), SIGUSR2);
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                return St.Handoffs > S.Handoffs;
              },
              60000)) {
        ++MatrixViolations;
        std::fprintf(stderr,
                     "VIOLATION: mid-drain upgrade never became ready\n");
        break;
      }
      // ESRCH is fine — a fast drain may already have exited.
      ::kill(static_cast<pid_t>(Leader), SIGKILL);
      break;
    }
    case 2: { // SIGKILL the successor pre-ready: rollback required.
      ::kill(static_cast<pid_t>(Leader), SIGUSR2);
      long Pending = -1;
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                Pending = St.PendingPid;
                return Pending > 0;
              },
              30000)) {
        ++MatrixViolations;
        std::fprintf(stderr, "VIOLATION: successor never spawned\n");
        break;
      }
      ::kill(static_cast<pid_t>(Pending), SIGKILL);
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                return St.Rollbacks > S.Rollbacks;
              },
              60000)) {
        ++MatrixViolations;
        std::fprintf(stderr,
                     "VIOLATION: killed successor never rolled back\n");
      }
      break;
    }
    case 3: { // SIGTERM racing an in-flight upgrade: drain wins, once.
      ::kill(static_cast<pid_t>(Leader), SIGUSR2);
      long Succ = -1;
      waitMatrix(
          [&] {
            std::lock_guard<std::mutex> Lock(St.M);
            Succ = St.PendingPid;
            return Succ > 0;
          },
          30000);
      ::kill(static_cast<pid_t>(Leader), SIGTERM);
      if (!waitMatrix([&] { return processGone(Leader); }, 60000)) {
        ++MatrixViolations;
        std::fprintf(stderr,
                     "VIOLATION: leader never exited after SIGTERM "
                     "raced an upgrade\n");
        break;
      }
      // The leader rolled the unready successor back before exiting;
      // wait it out and let the scraper drain the dynasty's buffered
      // lines, so the dead successor's announce line cannot be adopted
      // as leader after the reset below.
      if (Succ > 0)
        waitMatrix([&] { return processGone(Succ); }, 30000);
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      {
        std::lock_guard<std::mutex> Lock(St.M);
        St.LeaderPid = -1;
        St.PendingPid = -1;
      }
      std::vector<std::string> Args = BaseArgs;
      Args[2] = "127.0.0.1:" + std::to_string(Port); // Keep the port.
      if (spawnServe(Args, Pipe[1], Pipe[0]) < 0 ||
          !waitMatrix([&] { return leaderPid() > 0; }, 30000)) {
        ++MatrixViolations;
        std::fprintf(stderr, "VIOLATION: post-SIGTERM respawn never "
                             "announced\n");
      } else {
        ++Restarts;
      }
      break;
    }
    default: { // Back-to-back SIGUSR2: the second must be refused.
      ::kill(static_cast<pid_t>(Leader), SIGUSR2);
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                return St.PendingPid > 0;
              },
              30000)) {
        ++MatrixViolations;
        std::fprintf(stderr, "VIOLATION: successor never spawned\n");
        break;
      }
      ::kill(static_cast<pid_t>(Leader), SIGUSR2);
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                return St.Handoffs > S.Handoffs;
              },
              60000)) {
        ++MatrixViolations;
        std::fprintf(stderr,
                     "VIOLATION: double-upgrade handoff never ready\n");
        break;
      }
      if (!waitMatrix(
              [&] {
                std::lock_guard<std::mutex> Lock(St.M);
                return St.Refusals > S.Refusals;
              },
              10000)) {
        ++MatrixViolations;
        std::fprintf(stderr, "VIOLATION: second SIGUSR2 was never "
                             "refused\n");
      }
      break;
    }
    }
    if (MatrixViolations)
      break; // A wedged dynasty would stall the clients for nothing.
  }

  ScenariosDone.store(true, std::memory_order_relaxed);
  for (auto &C : Clients)
    C.join();

  // Quiesce: drain the last leader, then close our write end so the
  // scraper sees EOF once the dynasty's fd 2 is gone.
  long Last = leaderPid();
  if (Last > 0) {
    ::kill(static_cast<pid_t>(Last), SIGTERM);
    if (!waitMatrix([&] { return processGone(Last); }, 60000)) {
      ++MatrixViolations;
      std::fprintf(stderr, "VIOLATION: final drain never finished\n");
      ::kill(static_cast<pid_t>(Last), SIGKILL);
    }
  }
  ::close(Pipe[1]);
  Scraper.join();
  ::close(Pipe[0]);
  while (::waitpid(-1, nullptr, WNOHANG) > 0)
    ;

  MatrixState Fin;
  snapshot(Fin);

  Audit A;
  for (const std::string &L : Responses)
    auditLine(L, A);
  A.Violations += Lost + MatrixViolations;
  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++A.Violations;
      std::fprintf(stderr, "VIOLATION: id %s answered %llu times\n",
                   Id.c_str(), static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Sent - Lost) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu requests sent, %zu distinct terminal "
                 "statuses — responses were lost\n",
                 static_cast<unsigned long long>(Sent),
                 A.SliceResponses.size());
  }
  if (Fin.Handoffs < Opts.Upgrades) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: only %llu of %llu handoffs completed\n",
                 static_cast<unsigned long long>(Fin.Handoffs),
                 static_cast<unsigned long long>(Opts.Upgrades));
  }
  if (!Fin.Rollbacks) {
    ++A.Violations;
    std::fprintf(stderr, "VIOLATION: no readiness-failure rollback was "
                         "exercised — the matrix proved nothing about "
                         "rollback\n");
  }
  if (!Fin.Refusals) {
    ++A.Violations;
    std::fprintf(stderr, "VIOLATION: no double-upgrade refusal was "
                         "observed\n");
  }

  std::printf("jslice_soak: upgrade matrix — %llu requests over %u "
              "clients, %llu handoffs, %llu rollbacks, %llu refusals, "
              "%llu restarts\n",
              static_cast<unsigned long long>(Sent), NClients,
              static_cast<unsigned long long>(Fin.Handoffs),
              static_cast<unsigned long long>(Fin.Rollbacks),
              static_cast<unsigned long long>(Fin.Refusals),
              static_cast<unsigned long long>(Restarts));
  std::printf("               retried requests   %llu\n",
              static_cast<unsigned long long>(Retried));
  for (const auto &[StName, N] : A.ByStatus)
    std::printf("               %-18s %llu\n", StName.c_str(),
                static_cast<unsigned long long>(N));
  std::printf("               violations         %llu\n",
              static_cast<unsigned long long>(A.Violations));
  return A.Violations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Failover matrix: warm-standby chaos over a real primary/standby pair
//===----------------------------------------------------------------------===//

/// One real serve process in the failover pair, with a private stderr
/// scraper that learns the port it bound. Unlike the upgrade matrix's
/// dynasty pipe, each node gets its own pipe: both processes are alive
/// at once and their log streams must not be conflated.
class FailoverNode {
public:
  bool spawn(const std::vector<std::string> &Args, bool Verbose) {
    int P[2];
    if (::pipe(P) != 0)
      return false;
    Pid = spawnServe(Args, P[1], P[0]);
    // Only the child holds the write end, so EOF tracks its death.
    ::close(P[1]);
    if (Pid < 0) {
      ::close(P[0]);
      return false;
    }
    R = P[0];
    Scraper = std::thread([this, Verbose] {
      std::string Partial;
      char Buf[4096];
      for (;;) {
        int64_t N = readSome(R, Buf, sizeof(Buf));
        if (N <= 0)
          break;
        for (int64_t I = 0; I != N; ++I) {
          if (Buf[I] != '\n') {
            Partial.push_back(Buf[I]);
            continue;
          }
          scrape(Partial);
          if (Verbose)
            std::fprintf(stderr, "%s\n", Partial.c_str());
          Partial.clear();
        }
      }
    });
    return true;
  }

  uint16_t port() const { return Port.load(std::memory_order_relaxed); }
  long pid() const { return Pid; }

  void kill9() {
    if (Pid > 0)
      ::kill(static_cast<pid_t>(Pid), SIGKILL);
  }

  /// SIGTERM and wait for the drain to finish.
  bool term(uint64_t TimeoutMs) {
    if (Pid <= 0)
      return true;
    ::kill(static_cast<pid_t>(Pid), SIGTERM);
    return waitMatrix([this] { return processGone(Pid); }, TimeoutMs);
  }

  ~FailoverNode() {
    if (Pid > 0 && !processGone(Pid))
      ::kill(static_cast<pid_t>(Pid), SIGKILL);
    if (Scraper.joinable())
      Scraper.join();
    if (R >= 0)
      ::close(R);
    while (::waitpid(-1, nullptr, WNOHANG) > 0)
      ;
  }

private:
  void scrape(const std::string &Line) {
    if (Line.find("listening on ") == std::string::npos)
      return;
    size_t Colon = Line.rfind(':');
    if (Colon != std::string::npos)
      Port.store(static_cast<uint16_t>(
                     std::strtoul(Line.c_str() + Colon + 1, nullptr, 10)),
                 std::memory_order_relaxed);
  }

  long Pid = -1;
  int R = -1;
  std::thread Scraper;
  std::atomic<uint16_t> Port{0};
};

/// One request against a single endpoint; empty on transport failure.
std::string failoverAsk(uint16_t Port, const std::string &Line,
                        unsigned Attempts = 4) {
  ClientOptions CO;
  CO.Port = Port;
  CO.MaxAttempts = Attempts;
  CO.BackoffBaseMs = 20;
  CO.BackoffCapMs = 200;
  CO.ResponseTimeoutMs = 10000;
  ClientConnection Conn(CO);
  ClientResult R = Conn.request(Line);
  return R.Ok ? R.Response : std::string();
}

/// The standby's replication telemetry out of {"health"}.
struct StandbyView {
  bool Reachable = false;
  bool Connected = false;
  uint64_t AppliedSeq = 0;
  uint64_t PrimarySeq = 0;
  uint64_t Lag = 0;
};

StandbyView standbyView(uint16_t Port) {
  StandbyView Out;
  std::string Resp = failoverAsk(Port, "{\"health\": true}", 2);
  if (Resp.empty())
    return Out;
  std::optional<JsonValue> V = JsonValue::parse(Resp);
  if (!V || !V->isObject())
    return Out;
  Out.Reachable = true;
  const JsonValue *Repl = V->find("replication");
  if (!Repl || !Repl->isObject())
    return Out;
  if (const JsonValue *C = Repl->find("connected"))
    Out.Connected = C->isBool() && C->asBool();
  if (const JsonValue *A = Repl->find("applied_seq"))
    if (A->isNumber())
      Out.AppliedSeq = static_cast<uint64_t>(A->asInt());
  if (const JsonValue *P = Repl->find("primary_seq"))
    if (P->isNumber())
      Out.PrimarySeq = static_cast<uint64_t>(P->asInt());
  if (const JsonValue *L = Repl->find("lag_records"))
    if (L->isNumber())
      Out.Lag = static_cast<uint64_t>(L->asInt());
  return Out;
}

/// Waits until the standby has reconnected and applied past the
/// primary's position advertised when the stream reattached. Absolute
/// lag never has to reach zero — under async load the primary keeps
/// outrunning the stream — so the catch-up goal is the seq the fresh
/// hello carried, which proves the gap opened by the fault was
/// replayed.
bool standbyCaughtUp(uint16_t Port, uint64_t TimeoutMs) {
  uint64_t Goal = 0;
  return waitMatrix(
      [&] {
        StandbyView V = standbyView(Port);
        if (!V.Connected)
          return false;
        if (!Goal)
          Goal = V.PrimarySeq ? V.PrimarySeq : 1;
        return V.AppliedSeq >= Goal;
      },
      TimeoutMs);
}

/// The primary's replication counters out of {"stats"}.
struct PrimaryReplView {
  bool Reachable = false;
  uint64_t Resumes = 0;
  uint64_t Snapshots = 0;
  uint64_t SyncTimeouts = 0;
  uint64_t AckedSeq = 0;
};

PrimaryReplView primaryReplView(uint16_t Port) {
  PrimaryReplView Out;
  std::string Resp = failoverAsk(Port, "{\"stats\": true}", 2);
  if (Resp.empty())
    return Out;
  std::optional<JsonValue> V = JsonValue::parse(Resp);
  if (!V || !V->isObject())
    return Out;
  const JsonValue *S = V->find("stats");
  const JsonValue *R = S && S->isObject() ? S->find("replication") : nullptr;
  if (!R || !R->isObject())
    return Out;
  Out.Reachable = true;
  auto Count = [&](const char *Key, uint64_t &Dst) {
    if (const JsonValue *N = R->find(Key))
      if (N->isNumber())
        Dst = static_cast<uint64_t>(N->asInt());
  };
  Count("resumes", Out.Resumes);
  Count("snapshots", Out.Snapshots);
  Count("sync_timeouts", Out.SyncTimeouts);
  Count("acked_seq", Out.AckedSeq);
  return Out;
}

/// Waits for the primary-side proof that the standby re-subscribed
/// after a link fault: the hub's resume/snapshot counters advancing
/// past their pre-fault values. The standby's own health is no use for
/// this — right after a reconnect it reports Connected with seqs left
/// over from before the fault, while its subscribe line is still in
/// flight to the hub — so racing it reads "re-attached" off a stream
/// that has not reached the primary yet.
bool streamReattached(uint16_t PriPort, const PrimaryReplView &Before,
                      uint64_t TimeoutMs) {
  if (!Before.Reachable)
    return true; // No baseline to compare against; the catch-up and
                 // end-of-run audits still apply.
  return waitMatrix(
      [&] {
        PrimaryReplView Now = primaryReplView(PriPort);
        return Now.Reachable && Now.Resumes + Now.Snapshots >
                                    Before.Resumes + Before.Snapshots;
      },
      TimeoutMs);
}

/// Sends {"promote": true}; returns the new epoch, 0 on failure.
uint64_t failoverPromote(uint16_t Port) {
  std::string Resp = failoverAsk(Port, "{\"promote\": true}", 4);
  if (Resp.empty())
    return 0;
  std::optional<JsonValue> V = JsonValue::parse(Resp);
  if (!V || !V->isObject())
    return 0;
  const JsonValue *St = V->find("status");
  if (!St || !St->isString() || St->asString() != "ok")
    return 0;
  const JsonValue *E = V->find("epoch");
  return E && E->isNumber() ? static_cast<uint64_t>(E->asInt()) : 0;
}

/// (Re)builds the replication link's chaos proxy: same listen port
/// every time (the standby's --standby-of target is fixed), retargeted
/// at whichever node is currently primary.
std::unique_ptr<ChaosProxy> replProxy(uint16_t ListenPort,
                                      uint16_t Upstream, uint64_t Seed,
                                      bool Faulty, std::string &Err) {
  ChaosOptions CO;
  CO.ListenPort = ListenPort;
  CO.UpstreamPort = Upstream;
  if (Faulty) {
    // Torn frames and mid-stream resets are scenario 5 running
    // continuously: every reconnect must resume from the acked seq.
    CO.ResetPermille = 15;
    CO.TruncatePermille = 15;
    CO.DelayPermille = 30;
    CO.DelayMs = 1;
  }
  CO.Seed = Seed;
  auto P = std::make_unique<ChaosProxy>(CO);
  if (!P->start(Err))
    return nullptr;
  return P;
}

/// Ids of every verifiable begin record in \p Path — the replica-side
/// evidence for the acked-durability audit.
std::set<std::string> journalBeginIds(const std::string &Path) {
  std::set<std::string> Out;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() ||
        verifyJournalLine(Line) == JournalLineCheck::Corrupt)
      continue;
    std::optional<JsonValue> V = JsonValue::parse(Line);
    if (!V || !V->isObject())
      continue;
    const JsonValue *Ev = V->find("event");
    const JsonValue *Id = V->find("id");
    if (Ev && Ev->isString() && Ev->asString() == "begin" && Id &&
        Id->isString())
      Out.insert(Id->asString());
  }
  return Out;
}

int runFailoverMatrix(const SoakOptions &CliOpts) {
  SoakOptions Opts = CliOpts;
  if (Opts.ServeBin.empty()) {
    std::fprintf(stderr,
                 "error: --failover-matrix requires --serve-bin PATH\n");
    return 2;
  }

  // Journals and quarantine dirs belong to the node *slot* (the listen
  // port), not the role: a promoted standby keeps appending to what
  // was its replica journal.
  std::string Stem = Opts.JournalPath.empty()
                         ? std::string("failover-matrix")
                         : Opts.JournalPath;
  const std::string JPath[2] = {Stem + "-a.jsonl", Stem + "-b.jsonl"};
  const std::string QDir[2] = {Opts.QuarantineDir + "-a",
                               Opts.QuarantineDir + "-b"};
  std::error_code Ec;
  for (int I = 0; I != 2; ++I) {
    std::filesystem::remove(JPath[I], Ec);
    std::filesystem::remove(JPath[I] + ".rotate", Ec);
    std::filesystem::remove(JPath[I] + ".corrupt", Ec);
    std::filesystem::remove_all(QDir[I], Ec);
  }

  uint64_t MatrixViolations = 0;
  auto violate = [&](const std::string &Why) {
    ++MatrixViolations;
    std::fprintf(stderr, "VIOLATION: %s\n", Why.c_str());
  };

  auto serveArgs = [&](int Slot, uint16_t Port, uint16_t StandbyOfPort) {
    std::vector<std::string> A = {
        Opts.ServeBin,  "--listen",   "127.0.0.1:" + std::to_string(Port),
        "--journal",    JPath[Slot], "--quarantine",
        QDir[Slot],     "--repl-ack", replAckPolicyName(Opts.ReplAck)};
    if (Opts.Shards) {
      A.push_back("--shards");
      A.push_back(std::to_string(Opts.Shards));
    }
    if (StandbyOfPort) {
      A.push_back("--standby-of");
      A.push_back("127.0.0.1:" + std::to_string(StandbyOfPort));
    }
    return A;
  };

  // Boot the initial primary on an ephemeral port.
  int PriSlot = 0, StbSlot = 1;
  auto Pri = std::make_unique<FailoverNode>();
  if (!Pri->spawn(serveArgs(PriSlot, 0, 0), Opts.Verbose) ||
      !waitMatrix([&] { return Pri->port() != 0; }, 15000)) {
    violate("initial primary never announced itself");
    return 1;
  }
  uint16_t PriPort = Pri->port();

  // The replication link goes through the chaos proxy so the matrix
  // can tear, partition, and heal it on demand.
  std::string Err;
  std::unique_ptr<ChaosProxy> Proxy =
      replProxy(0, PriPort, Opts.Seed, /*Faulty=*/true, Err);
  if (!Proxy) {
    violate("cannot start the replication chaos proxy: " + Err);
    return 1;
  }
  const uint16_t ProxyPort = Proxy->port();

  // Seeds (or re-seeds) a standby in \p Slot; Port = 0 takes an
  // ephemeral port, nonzero rebinds a dead predecessor's port so the
  // clients' endpoint list stays valid across the whole matrix.
  auto seedStandby =
      [&](int Slot, uint16_t Port) -> std::unique_ptr<FailoverNode> {
    std::filesystem::remove(JPath[Slot], Ec);
    std::filesystem::remove(JPath[Slot] + ".corrupt", Ec);
    auto N = std::make_unique<FailoverNode>();
    if (!N->spawn(serveArgs(Slot, Port, ProxyPort), Opts.Verbose) ||
        !waitMatrix([&] { return N->port() != 0; }, 15000))
      return nullptr;
    uint16_t P = N->port();
    if (!waitMatrix([&] { return standbyView(P).Connected; }, 30000))
      return nullptr;
    return N;
  };

  auto Stb = seedStandby(StbSlot, 0);
  if (!Stb) {
    violate("initial standby never connected to the primary");
    return 1;
  }
  uint16_t StbPort = Stb->port();

  // Client load: both endpoints, rotated on transport failure — the
  // Client failover machinery under test. Sheds (standby refusing
  // pre-promotion, the fence, drains) are retried at the outer level
  // until a terminal status lands; ids keep flowing past --requests
  // until the scenarios finish so every failover happens under load.
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  std::atomic<bool> ScenariosDone{false};
  std::atomic<uint64_t> NextId{0};
  std::atomic<uint64_t> Answered{0};
  std::mutex AuditM;
  std::vector<std::string> Responses;
  uint64_t Sent = 0, Lost = 0, Retried = 0, EndpointFailovers = 0;
  unsigned NClients = Opts.NetClients ? Opts.NetClients : 1;
  std::vector<std::thread> Clients;
  for (unsigned CI = 0; CI != NClients; ++CI) {
    Clients.emplace_back([&, CI, PriPort, StbPort] {
      ClientOptions CliOpt;
      CliOpt.Port = PriPort;
      CliOpt.Endpoints = {"127.0.0.1:" + std::to_string(PriPort),
                          "127.0.0.1:" + std::to_string(StbPort)};
      CliOpt.MaxAttempts = 64;
      CliOpt.BackoffBaseMs = 2;
      CliOpt.BackoffCapMs = 100;
      CliOpt.ResponseTimeoutMs = 60000;
      CliOpt.JitterSeed = Opts.Seed + CI + 1;
      ClientConnection Conn(CliOpt);
      std::vector<std::string> Local;
      uint64_t LocalSent = 0, LocalLost = 0, LocalRetried = 0;
      for (;;) {
        uint64_t I = NextId.fetch_add(1, std::memory_order_relaxed);
        if (I >= Opts.Requests &&
            ScenariosDone.load(std::memory_order_relaxed))
          break;
        const SoakProgram &P = Programs[I % Programs.size()];
        ServiceRequest R;
        R.Id = "f" + std::to_string(I);
        R.Program = P.Source;
        const Criterion &C = P.Criteria[I % P.Criteria.size()];
        R.Line = C.Line;
        R.Vars = C.Vars;
        R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                         sizeof(AllAlgorithms[0]))];
        std::string Line = R.toJson().str();
        ++LocalSent;
        bool Done = false, WasRetried = false;
        for (unsigned Try = 0; Try != 120 && !Done; ++Try) {
          ClientResult Res = Conn.request(Line);
          if (Try || Res.Attempts > 1)
            WasRetried = true;
          if (!Res.Ok) {
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
            continue;
          }
          if (Res.Response.find("\"status\":\"shed\"") !=
              std::string::npos) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            continue;
          }
          Local.push_back(std::move(Res.Response));
          Answered.fetch_add(1, std::memory_order_relaxed);
          Done = true;
        }
        if (WasRetried)
          ++LocalRetried;
        if (!Done) {
          ++LocalLost;
          std::lock_guard<std::mutex> Lock(AuditM);
          std::fprintf(stderr,
                       "VIOLATION: request lost across the failover "
                       "matrix: %.80s\n",
                       Line.c_str());
        }
      }
      std::lock_guard<std::mutex> Lock(AuditM);
      for (auto &L : Local)
        Responses.push_back(std::move(L));
      Sent += LocalSent;
      Lost += LocalLost;
      Retried += LocalRetried;
      EndpointFailovers += Conn.failovers();
    });
  }

  // Let the pair serve real traffic before the first kill, so the
  // SIGKILL lands mid-request, not on an idle server.
  waitMatrix([&] { return Answered.load(std::memory_order_relaxed) >=
                          NClients * 2; },
             30000);

  uint64_t Epoch = 0;

  // Scenario 1 — kill -9 the primary mid-request; explicit promotion.
  // Clients must fail over to the standby and stall only until the
  // promotion lands.
  {
    Pri->kill9();
    uint64_t E = 0;
    for (unsigned Try = 0; Try != 25 && !E; ++Try) {
      E = failoverPromote(StbPort);
      if (!E)
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (!E)
      violate("standby never promoted after the primary's kill -9");
    else if (E < 2)
      violate("promotion did not advance the epoch past the dead "
              "primary's");
    Epoch = E;
    // Roles swap; the freed slot re-seeds as the new standby behind a
    // retargeted proxy.
    std::swap(PriSlot, StbSlot);
    std::swap(PriPort, StbPort);
    Pri = std::move(Stb);
    Proxy->stop();
    Proxy = replProxy(ProxyPort, PriPort, Opts.Seed + 2, true, Err);
    if (!Proxy)
      violate("cannot retarget the replication proxy: " + Err);
    else if (!(Stb = seedStandby(StbSlot, StbPort)))
      violate("cannot re-seed a standby after the first failover");
  }

  // Scenario 2 — kill -9 the standby. The primary must keep answering
  // (a sync ack policy must not wedge admission with no subscriber),
  // then a fresh standby re-seeds from a full snapshot.
  if (!MatrixViolations) {
    Stb->kill9();
    Stb.reset();
    const SoakProgram &P = Programs[0];
    ServiceRequest R;
    R.Id = "s2-probe";
    R.Program = P.Source;
    R.Line = P.Criteria[0].Line;
    R.Vars = P.Criteria[0].Vars;
    std::string Resp = failoverAsk(PriPort, R.toJson().str(), 8);
    if (Resp.empty() ||
        Resp.find("\"status\":") == std::string::npos)
      violate("primary stopped answering while the standby was down");
    if (!(Stb = seedStandby(StbSlot, StbPort)))
      violate("cannot re-seed the standby after its kill -9");
  }

  // Scenario 3 — partition the replication link, let the standby fall
  // behind under load, heal, and require the stream to re-attach
  // through the subscribe protocol and catch up. Both hub answers are
  // legal here: a *resume* from the last acked seq when the primary
  // still retains that range, or a *snapshot* when rotation compacted
  // past it while the link was down (under full load the partition
  // window is long enough for either). What is not legal is silence —
  // neither counter advancing means the standby never re-attached.
  if (!MatrixViolations) {
    PrimaryReplView Before = primaryReplView(PriPort);
    Proxy->stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(750));
    Proxy = replProxy(ProxyPort, PriPort, Opts.Seed + 3, true, Err);
    if (!Proxy)
      violate("cannot heal the replication partition: " + Err);
    else if (!streamReattached(PriPort, Before, 30000))
      violate("healed partition never re-attached the stream (no "
              "resume, no snapshot)");
    else if (!standbyCaughtUp(StbPort, 30000))
      violate("standby never caught up after the partition healed");
  }

  // Scenario 4 — promote the standby while the old primary still
  // lives. The epoch fence must deterministically refuse the
  // ex-primary: zero split-brain serves.
  if (!MatrixViolations) {
    uint64_t E = failoverPromote(StbPort);
    if (E <= Epoch)
      violate("live-primary promotion did not advance the epoch");
    else
      Epoch = E;
    for (unsigned I = 0; I != 8 && E; ++I) {
      const SoakProgram &P = Programs[I % Programs.size()];
      ServiceRequest R;
      R.Id = "fence" + std::to_string(I);
      R.Program = P.Source;
      const Criterion &C = P.Criteria[I % P.Criteria.size()];
      R.Line = C.Line;
      R.Vars = C.Vars;
      R.MinEpoch = Epoch;
      std::string Resp = failoverAsk(PriPort, R.toJson().str());
      if (Resp.empty())
        continue; // Unreachable is also a refusal.
      if (Resp.find("\"status\":\"shed\"") == std::string::npos ||
          Resp.find("fenced") == std::string::npos)
        violate("ex-primary served a request fenced at epoch " +
                std::to_string(Epoch) + ": " + Resp);
    }
    // Resolve the split brain the way the watchdog does: the fenced
    // ex-primary dies, the promoted standby is the primary.
    Pri->kill9();
    std::swap(PriSlot, StbSlot);
    std::swap(PriPort, StbPort);
    Pri = std::move(Stb);
    Proxy->stop();
    Proxy = replProxy(ProxyPort, PriPort, Opts.Seed + 4, true, Err);
    if (!Proxy)
      violate("cannot retarget the proxy after the fenced failover: " +
              Err);
    else if (!(Stb = seedStandby(StbSlot, StbPort)))
      violate("cannot re-seed the standby after the fenced failover");
  }

  // Scenario 5 — tear the replication stream mid-flight; the standby
  // must resume from its ack high-water mark over a now-clean link
  // (the endgame link is fault-free so the acked-durability audit
  // below measures the policy, not the chaos).
  if (!MatrixViolations) {
    // Quiesce first: with the freshly re-seeded standby caught up to
    // the primary's tip, the post-tear re-subscribe lands inside the
    // retained tail and the hub's answer is deterministically a
    // resume — unless a rotation crosses the ack high-water during
    // the sub-second tear window, in which case a snapshot is the
    // correct (and audited-equivalent) catch-up.
    if (!standbyCaughtUp(StbPort, 30000))
      violate("standby never caught up before the stream tear");
    PrimaryReplView Before = primaryReplView(PriPort);
    Proxy->stop(); // Severs the stream mid-frame.
    Proxy = replProxy(ProxyPort, PriPort, Opts.Seed + 5,
                      /*Faulty=*/false, Err);
    if (!Proxy)
      violate("cannot rebuild the replication link after the tear: " +
              Err);
    else if (!streamReattached(PriPort, Before, 30000))
      violate("torn stream never re-attached from the last acked seq "
              "(no resume, no snapshot)");
    else if (!standbyCaughtUp(StbPort, 30000))
      violate("standby never resumed after the torn stream");
  }

  ScenariosDone.store(true, std::memory_order_relaxed);
  for (auto &C : Clients)
    C.join();

  // The acked-durability audit: with --repl-ack=sync every response
  // released to a client is preceded by the standby's durable ack of
  // its begin record, so a tail batch served over the healthy endgame
  // link, followed by kill -9 of the primary, must be fully present in
  // the replica journal — zero acknowledged-but-lost records. (If any
  // ack wait timed out during the batch, the guarantee was legally
  // waived for those requests and the strict check is skipped.)
  uint64_t TailOk = 0;
  if (!MatrixViolations && Opts.ReplAck == ReplAckPolicy::Sync && Stb) {
    PrimaryReplView Before = primaryReplView(PriPort);
    std::vector<std::string> TailIds;
    for (unsigned I = 0; I != 16; ++I) {
      const SoakProgram &P = Programs[I % Programs.size()];
      ServiceRequest R;
      R.Id = "tail" + std::to_string(I);
      R.Program = P.Source;
      const Criterion &C = P.Criteria[I % P.Criteria.size()];
      R.Line = C.Line;
      R.Vars = C.Vars;
      std::string Resp = failoverAsk(PriPort, R.toJson().str(), 8);
      if (Resp.find("\"status\":\"ok\"") != std::string::npos) {
        ++TailOk;
        TailIds.push_back(R.Id);
      }
    }
    PrimaryReplView After = primaryReplView(PriPort);
    bool Strict = Before.Reachable && After.Reachable &&
                  After.SyncTimeouts == Before.SyncTimeouts;
    Pri->kill9();
    Pri.reset();
    if (!Stb->term(30000))
      violate("standby never drained for the post-matrix scan");
    Stb.reset();
    JournalScan Scan = scanJournalDetailed(JPath[StbSlot]);
    if (Scan.CorruptRecords)
      violate("replica journal holds mid-file corruption after the "
              "matrix");
    if (Scan.MaxEpoch < Epoch)
      violate("replica journal never saw the final fencing epoch " +
              std::to_string(Epoch));
    if (!TailOk)
      violate("acked-durability tail batch produced no ok responses — "
              "the audit proved nothing");
    if (Strict) {
      std::set<std::string> Begins = journalBeginIds(JPath[StbSlot]);
      for (const std::string &Id : TailIds)
        if (!Begins.count(Id))
          violate("acknowledged-but-lost: response for id " + Id +
                  " has no replica-journal record");
    } else {
      std::fprintf(stderr,
                   "jslice_soak: sync ack timeouts during the tail "
                   "batch; acked-durability audit skipped\n");
    }
  } else {
    if (Pri)
      Pri->kill9();
    Pri.reset();
    if (Stb)
      Stb->term(15000);
    Stb.reset();
  }
  Proxy.reset();

  // Coverage: two promotions means the final epoch is at least 3 — a
  // matrix that never failed over proved nothing.
  if (Epoch < 3)
    violate("matrix finished at epoch " + std::to_string(Epoch) +
            " — both promotions must land");

  Audit A;
  for (const std::string &L : Responses)
    auditLine(L, A);
  A.Violations += Lost + MatrixViolations;
  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++A.Violations;
      std::fprintf(stderr, "VIOLATION: id %s answered %llu times\n",
                   Id.c_str(), static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Sent - Lost) {
    ++A.Violations;
    std::fprintf(stderr,
                 "VIOLATION: %llu requests sent, %zu distinct terminal "
                 "statuses — responses were lost\n",
                 static_cast<unsigned long long>(Sent),
                 A.SliceResponses.size());
  }

  std::printf("jslice_soak: failover matrix — %llu requests over %u "
              "clients, final epoch %llu, %llu endpoint failovers, "
              "%llu tail-audited, ack=%s\n",
              static_cast<unsigned long long>(Sent), NClients,
              static_cast<unsigned long long>(Epoch),
              static_cast<unsigned long long>(EndpointFailovers),
              static_cast<unsigned long long>(TailOk),
              replAckPolicyName(Opts.ReplAck));
  std::printf("               retried requests   %llu\n",
              static_cast<unsigned long long>(Retried));
  for (const auto &[StName, N] : A.ByStatus)
    std::printf("               %-18s %llu\n", StName.c_str(),
                static_cast<unsigned long long>(N));
  std::printf("               violations         %llu\n",
              static_cast<unsigned long long>(A.Violations));
  return A.Violations ? 1 : 0;
}

#else // !JSLICE_HAVE_POSIX_PROCESS

int runNetSoak(const SoakOptions &) {
  std::fprintf(stderr,
               "jslice_soak: TCP transport unavailable; --net skipped\n");
  return 0;
}

int runUpgradeMatrix(const SoakOptions &) {
  std::fprintf(stderr, "jslice_soak: process control unavailable; "
                       "--upgrade-matrix skipped\n");
  return 0;
}

int runFailoverMatrix(const SoakOptions &) {
  std::fprintf(stderr, "jslice_soak: process control unavailable; "
                       "--failover-matrix skipped\n");
  return 0;
}

#endif

//===----------------------------------------------------------------------===//
// Isolation benchmark
//===----------------------------------------------------------------------===//

struct BenchRun {
  double WallMs = 0;
  double ThroughputRps = 0;
  ServerStats Stats;
};

BenchRun benchMode(const SoakOptions &Opts, const std::string &Input,
                   bool Process, const CacheOptions &Cache,
                   const std::string &JournalPath = "",
                   JournalSync Sync = JournalSync::Full) {
  std::istringstream In(Input);
  std::ostringstream Out;
  std::ostringstream Log;
  ServerOptions SOpts;
  SOpts.Threads = Opts.Threads;
  SOpts.IsolateProcess = Process;
  SOpts.Super.Workers = Opts.Workers;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.Cache = Cache;
  SOpts.JournalPath = JournalPath;
  SOpts.JournalSyncPolicy = Sync;
  Server S(SOpts, Out, Log);

  auto Start = std::chrono::steady_clock::now();
  S.serve(In);
  BenchRun R;
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  R.Stats = S.stats();
  S.finish();
  uint64_t Answered = R.Stats.Served + R.Stats.Refused + R.Stats.Errors;
  R.ThroughputRps = R.WallMs > 0 ? Answered / (R.WallMs / 1000.0) : 0;
  return R;
}

#ifdef JSLICE_HAVE_POSIX_PROCESS
/// Times the same stream through one pipelined TCP connection: a
/// writer thread floods every request line while the main thread
/// drains responses — the socket-transport cost relative to the
/// in-process stdin path. Returns nullopt when the listener cannot
/// start. With \p A non-null every complete response line is also
/// audited, so a cached-vs-cacheless comparison carries the full
/// exactly-once guarantee, not just a newline count.
std::optional<BenchRun> benchTcpMode(const SoakOptions &Opts,
                                     const std::string &Input,
                                     uint64_t Slices,
                                     const CacheOptions &Cache,
                                     Audit *A = nullptr) {
  std::ostringstream Unused, Log;
  ServerOptions SOpts;
  SOpts.Threads = Opts.Threads;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.Cache = Cache;
  Server S(SOpts, Unused, Log);
  TcpServerOptions TOpts;
  TOpts.Shards = Opts.Shards;
  TcpServer T(S, TOpts, Log);
  std::string Err;
  if (!T.start(Err))
    return std::nullopt;
  std::thread Loop([&] { T.run(); });

  auto Start = std::chrono::steady_clock::now();
  BenchRun R;
  {
    int Fd = connectTcp("127.0.0.1", T.port(), 5000, Err);
    if (Fd < 0) {
      T.requestStop();
      Loop.join();
      S.finish();
      return std::nullopt;
    }
    std::thread Writer([&] {
      size_t Sent = 0;
      while (Sent < Input.size()) {
        int64_t W = sendSome(Fd, Input.data() + Sent, Input.size() - Sent);
        if (W <= 0)
          break;
        Sent += static_cast<size_t>(W);
      }
    });
    uint64_t Got = 0;
    char Chunk[65536];
    std::string Partial;
    while (Got < Slices) {
      int64_t N = recvSome(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        break;
      for (int64_t I = 0; I != N; ++I) {
        if (Chunk[I] != '\n') {
          if (A)
            Partial.push_back(Chunk[I]);
          continue;
        }
        ++Got;
        if (A) {
          if (!Partial.empty())
            auditLine(Partial, *A);
          Partial.clear();
        }
      }
    }
    Writer.join();
    closeQuietly(Fd);
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  T.requestStop();
  Loop.join();
  S.finish();
  // Snapshot after finish(): the last response reaches the socket a
  // breath before the server's own counters settle.
  R.Stats = S.stats();
  uint64_t Answered = R.Stats.Served + R.Stats.Refused + R.Stats.Errors;
  R.ThroughputRps = R.WallMs > 0 ? Answered / (R.WallMs / 1000.0) : 0;
  return R;
}

/// A Zipf-distributed request stream: the rank-r program is drawn with
/// probability proportional to 1/r — the textbook shape of repeated
/// analysis traffic (a few hot programs, a long cold tail), and the
/// regime a content-addressed cache is built for. Criteria and
/// algorithms still rotate per request, so hits exercise the whole
/// closure table of each cached artifact rather than one memoized row.
std::string buildZipfStream(const SoakOptions &Opts,
                            const std::vector<SoakProgram> &Programs,
                            uint64_t &Slices) {
  std::vector<double> Cdf;
  Cdf.reserve(Programs.size());
  double Sum = 0;
  for (size_t R = 0; R != Programs.size(); ++R) {
    Sum += 1.0 / static_cast<double>(R + 1);
    Cdf.push_back(Sum);
  }
  uint64_t Rng = Opts.Seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  std::ostringstream Stream;
  Slices = 0;
  for (uint64_t I = 0; I != Opts.Requests; ++I) {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    double U = static_cast<double>(Rng >> 11) *
               (1.0 / 9007199254740992.0) * Sum;
    size_t Rank = static_cast<size_t>(
        std::lower_bound(Cdf.begin(), Cdf.end(), U) - Cdf.begin());
    if (Rank >= Programs.size())
      Rank = Programs.size() - 1;
    const SoakProgram &P = Programs[Rank];
    ServiceRequest R;
    R.Id = "z" + std::to_string(I);
    R.Program = P.Source;
    const Criterion &C = P.Criteria[I % P.Criteria.size()];
    R.Line = C.Line;
    R.Vars = C.Vars;
    R.Algorithm = AllAlgorithms[I % (sizeof(AllAlgorithms) /
                                     sizeof(AllAlgorithms[0]))];
    Stream << R.toJson().str() << "\n";
    ++Slices;
  }
  return Stream.str();
}

/// The exactly-once audit over one Zipf bench pass.
uint64_t zipfExactlyOnce(Audit &A, uint64_t Slices, const char *Tag) {
  uint64_t Violations = A.Violations;
  for (const auto &[Id, N] : A.SliceResponses)
    if (N != 1) {
      ++Violations;
      std::fprintf(stderr, "VIOLATION: zipf %s: id %s answered %llu times\n",
                   Tag, Id.c_str(), static_cast<unsigned long long>(N));
    }
  if (A.SliceResponses.size() != Slices) {
    ++Violations;
    std::fprintf(stderr,
                 "VIOLATION: zipf %s: %llu requests, %zu distinct "
                 "responses\n",
                 Tag, static_cast<unsigned long long>(Slices),
                 A.SliceResponses.size());
  }
  return Violations;
}

/// One rung of the shard ladder: the same framed request lines split
/// round-robin across \p Clients concurrent connections into a server
/// running \p Shards reactor shards. benchTcpMode's single pipelined
/// connection can only ever land on one shard; this variant gives
/// every shard work, so the ladder measures what sharding buys on the
/// hardware at hand. Every response line is collected and audited.
std::optional<BenchRun> benchTcpMulti(const SoakOptions &Opts,
                                      const std::vector<std::string> &Lines,
                                      unsigned Shards, unsigned Clients,
                                      const CacheOptions &Cache, Audit &A) {
  std::ostringstream Unused, Log;
  ServerOptions SOpts;
  SOpts.Threads = Opts.Threads;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.Cache = Cache;
  Server S(SOpts, Unused, Log);
  TcpServerOptions TOpts;
  TOpts.Shards = Shards;
  TcpServer T(S, TOpts, Log);
  std::string Err;
  if (!T.start(Err))
    return std::nullopt;
  std::thread Loop([&] { T.run(); });
  uint16_t Port = T.port();

  // Pre-framed per-client partitions, so client threads only shovel.
  std::vector<std::string> In(Clients);
  std::vector<uint64_t> Expect(Clients, 0);
  for (size_t I = 0; I != Lines.size(); ++I) {
    In[I % Clients] += Lines[I];
    In[I % Clients] += '\n';
    ++Expect[I % Clients];
  }

  std::mutex M;
  std::vector<std::string> Collected;
  Collected.reserve(Lines.size());

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Pump;
  for (unsigned CI = 0; CI != Clients; ++CI) {
    Pump.emplace_back([&, CI] {
      std::string E;
      int Fd = connectTcp("127.0.0.1", Port, 5000, E);
      if (Fd < 0)
        return; // The exactly-once audit reports the missing responses.
      std::thread Writer([&, Fd] {
        const std::string &Buf = In[CI];
        size_t Sent = 0;
        while (Sent < Buf.size()) {
          int64_t W = sendSome(Fd, Buf.data() + Sent, Buf.size() - Sent);
          if (W <= 0)
            break;
          Sent += static_cast<size_t>(W);
        }
      });
      std::vector<std::string> Local;
      Local.reserve(Expect[CI]);
      std::string Partial;
      char Chunk[65536];
      uint64_t Got = 0;
      while (Got < Expect[CI]) {
        int64_t N = recvSome(Fd, Chunk, sizeof(Chunk));
        if (N <= 0)
          break;
        for (int64_t I = 0; I != N; ++I) {
          if (Chunk[I] != '\n') {
            Partial.push_back(Chunk[I]);
            continue;
          }
          Local.push_back(Partial);
          Partial.clear();
          ++Got;
        }
      }
      Writer.join();
      closeQuietly(Fd);
      std::lock_guard<std::mutex> Lock(M);
      for (auto &L : Local)
        Collected.push_back(std::move(L));
    });
  }
  for (auto &P : Pump)
    P.join();
  BenchRun R;
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  T.requestStop();
  Loop.join();
  S.finish();
  R.Stats = S.stats();
  for (const std::string &L : Collected)
    auditLine(L, A);
  uint64_t Answered = R.Stats.Served + R.Stats.Refused + R.Stats.Errors;
  R.ThroughputRps = R.WallMs > 0 ? Answered / (R.WallMs / 1000.0) : 0;
  return R;
}

/// One bench pass with the journal on and — when \p WithStandby — a
/// real StandbyTail subscribed over TCP at \p Policy, so the measured
/// ladder prices what each ack policy costs on the hot path against
/// the journal-only baseline. The subscription is established before
/// the clock starts; sync rows therefore wait on a live ack for every
/// admission, never on the no-subscriber fast path.
std::optional<BenchRun> benchReplicated(const SoakOptions &Opts,
                                        const std::string &Input,
                                        uint64_t Slices,
                                        const CacheOptions &Cache,
                                        ReplAckPolicy Policy,
                                        bool WithStandby) {
  const std::string JPath = "bench-repl-journal.jsonl";
  const std::string RPath = "bench-repl-replica.jsonl";
  std::error_code Ec;
  std::filesystem::remove(JPath, Ec);
  std::filesystem::remove(RPath, Ec);

  std::ostringstream Unused, Log;
  ServerOptions SOpts;
  SOpts.Threads = Opts.Threads;
  SOpts.QuarantineDir = Opts.QuarantineDir;
  SOpts.Cache = Cache;
  SOpts.JournalPath = JPath;
  SOpts.ReplAck = Policy;
  Server S(SOpts, Unused, Log);
  TcpServerOptions TOpts;
  TOpts.Shards = Opts.Shards;
  TcpServer T(S, TOpts, Log);
  std::string Err;
  if (!T.start(Err))
    return std::nullopt;
  std::thread Loop([&] { T.run(); });

  Journal Replica;
  std::unique_ptr<StandbyTail> Tail;
  auto Teardown = [&] {
    if (Tail)
      Tail->stop();
    T.requestStop();
    Loop.join();
    S.finish();
  };
  if (WithStandby) {
    StandbyTailOptions TO;
    TO.Port = T.port();
    bool Up = Replica.open(RPath);
    if (Up) {
      Tail = std::make_unique<StandbyTail>(TO, Replica);
      Up = Tail->start(Err);
    }
    for (int I = 0; Up && I != 500 && !Tail->stats().Connected; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!Up || !Tail->stats().Connected) {
      Teardown();
      return std::nullopt;
    }
  }

  auto Start = std::chrono::steady_clock::now();
  BenchRun R;
  {
    int Fd = connectTcp("127.0.0.1", T.port(), 5000, Err);
    if (Fd < 0) {
      Teardown();
      return std::nullopt;
    }
    std::thread Writer([&] {
      size_t Sent = 0;
      while (Sent < Input.size()) {
        int64_t W = sendSome(Fd, Input.data() + Sent, Input.size() - Sent);
        if (W <= 0)
          break;
        Sent += static_cast<size_t>(W);
      }
    });
    uint64_t Got = 0;
    char Chunk[65536];
    while (Got < Slices) {
      int64_t N = recvSome(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        break;
      for (int64_t I = 0; I != N; ++I)
        if (Chunk[I] == '\n')
          ++Got;
    }
    Writer.join();
    closeQuietly(Fd);
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  Teardown();
  R.Stats = S.stats();
  uint64_t Answered = R.Stats.Served + R.Stats.Refused + R.Stats.Errors;
  R.ThroughputRps = R.WallMs > 0 ? Answered / (R.WallMs / 1000.0) : 0;
  std::filesystem::remove(JPath, Ec);
  std::filesystem::remove(RPath, Ec);
  return R;
}
#endif

JsonValue benchJson(const BenchRun &R) {
  JsonValue V = JsonValue::object();
  V.set("wall_ms", R.WallMs);
  V.set("throughput_rps", R.ThroughputRps);
  V.set("latency_p50_ms", R.Stats.P50Ms);
  V.set("latency_p95_ms", R.Stats.P95Ms);
  V.set("served", R.Stats.Served);
  V.set("degraded", R.Stats.Degraded);
  V.set("refused", R.Stats.Refused);
  V.set("errors", R.Stats.Errors);
  V.set("shed", R.Stats.Shed);
  V.set("crashed", R.Stats.Crashed);
  return V;
}

int runBench(const SoakOptions &Opts) {
  std::vector<SoakProgram> Programs = buildPrograms(Opts);
  uint64_t Slices = 0;
  std::string Input = buildSliceStream(Opts, Programs, Slices);

  // The mode rows measure isolation and transport overhead, so they
  // run cache-off: a hit-heavy round-robin stream would otherwise turn
  // them into a second cache benchmark.
  CacheOptions CacheOff = cacheOptions(Opts);
  CacheOff.Enabled = false;
  BenchRun Thread = benchMode(Opts, Input, /*Process=*/false, CacheOff);
  BenchRun Process = benchMode(Opts, Input, /*Process=*/true, CacheOff);
  std::optional<BenchRun> Tcp;
#ifdef JSLICE_HAVE_POSIX_PROCESS
  Tcp = benchTcpMode(Opts, Input, Slices, CacheOff);
#endif

  JsonValue Root = JsonValue::object();
  Root.set("benchmark", "jslice_soak --bench");
  Root.set("requests", Slices);
  Root.set("programs", static_cast<uint64_t>(Programs.size()));
  Root.set("hardware_concurrency",
           static_cast<uint64_t>(std::thread::hardware_concurrency()));
  JsonValue Modes = JsonValue::object();
  Modes.set("thread", benchJson(Thread));
  Modes.set("process", benchJson(Process));
  if (Tcp)
    Modes.set("tcp", benchJson(*Tcp));
  Root.set("modes", std::move(Modes));
  JsonValue Overhead = JsonValue::object();
  if (Thread.Stats.P50Ms > 0)
    Overhead.set("p50_ratio", Process.Stats.P50Ms / Thread.Stats.P50Ms);
  if (Process.ThroughputRps > 0)
    Overhead.set("throughput_ratio",
                 Thread.ThroughputRps / Process.ThroughputRps);
  Root.set("process_overhead", std::move(Overhead));
  if (Tcp && Tcp->ThroughputRps > 0) {
    // TCP-vs-stdin: the socket hop's toll on the same thread-isolated
    // request stream.
    JsonValue Net = JsonValue::object();
    Net.set("throughput_ratio", Thread.ThroughputRps / Tcp->ThroughputRps);
    Root.set("tcp_overhead", std::move(Net));
  }

  // The durability ladder: the same stream through thread isolation
  // with the journal at each sync policy. The gap between `full` and
  // `batch` is the per-record fsync's hot-path price; `off` is the
  // OS-page-cache ceiling (DESIGN.md §16 documents the trade-off each
  // rung buys).
  {
    std::string JPath = Opts.JournalPath.empty() ? "bench-journal.jsonl"
                                                 : Opts.JournalPath;
    JsonValue Sync = JsonValue::object();
    std::printf("jslice_soak: journal sync —");
    const JournalSync Policies[] = {JournalSync::Full, JournalSync::Batch,
                                    JournalSync::Off};
    for (JournalSync Policy : Policies) {
      std::error_code Ec;
      std::filesystem::remove(JPath, Ec);
      BenchRun R =
          benchMode(Opts, Input, /*Process=*/false, CacheOff, JPath, Policy);
      Sync.set(journalSyncName(Policy), benchJson(R));
      std::printf(" %s %.0f req/s%s", journalSyncName(Policy),
                  R.ThroughputRps, Policy == JournalSync::Off ? "\n" : " |");
    }
    Root.set("journal_sync", std::move(Sync));
    std::error_code Ec;
    std::filesystem::remove(JPath, Ec);
  }

  // The replication ladder: the same stream with the journal on and a
  // real standby tailing the stream over TCP, at each ack policy.
  // `no_replica` is the baseline price of journal + transport alone;
  // the async -> flush -> sync spread is what each narrowing of the
  // acknowledged-loss window costs on the hot path (DESIGN.md,
  // "Replication & failover" tabulates the windows).
#ifdef JSLICE_HAVE_POSIX_PROCESS
  {
    JsonValue Repl = JsonValue::object();
    std::printf("jslice_soak: replication —");
    double Baseline = 0;
    if (std::optional<BenchRun> Base =
            benchReplicated(Opts, Input, Slices, CacheOff,
                            ReplAckPolicy::Async, /*WithStandby=*/false)) {
      Baseline = Base->ThroughputRps;
      Repl.set("no_replica", benchJson(*Base));
      std::printf(" no-replica %.0f req/s |", Baseline);
    }
    const ReplAckPolicy Policies[] = {
        ReplAckPolicy::Async, ReplAckPolicy::Flush, ReplAckPolicy::Sync};
    for (ReplAckPolicy Policy : Policies) {
      std::optional<BenchRun> R = benchReplicated(
          Opts, Input, Slices, CacheOff, Policy, /*WithStandby=*/true);
      if (!R)
        continue;
      JsonValue Row = benchJson(*R);
      if (Baseline > 0 && R->ThroughputRps > 0)
        Row.set("slowdown_vs_no_replica", Baseline / R->ThroughputRps);
      Repl.set(replAckPolicyName(Policy), std::move(Row));
      std::printf(" %s %.0f req/s%s", replAckPolicyName(Policy),
                  R->ThroughputRps,
                  Policy == ReplAckPolicy::Sync ? "\n" : " |");
    }
    Root.set("replication", std::move(Repl));
  }
#endif

  // The cache benchmark: the same corpus under a Zipf draw, through
  // TCP, cache-off then cache-on with self-audit sampling. Both passes
  // carry the exactly-once audit; the cache-on pass must additionally
  // end with zero self-audit mismatches.
  uint64_t ZipfViolations = 0;
#ifdef JSLICE_HAVE_POSIX_PROCESS
  {
    double ZipfSpeedup = 0;
    uint64_t ZSlices = 0;
    std::string ZInput = buildZipfStream(Opts, Programs, ZSlices);
    CacheOptions CacheOn = cacheOptions(Opts);
    CacheOn.Enabled = true;
    if (!CacheOn.AuditEvery)
      CacheOn.AuditEvery = 16;
    Audit AOff, AOn;
    std::optional<BenchRun> ZOff =
        benchTcpMode(Opts, ZInput, ZSlices, CacheOff, &AOff);
    std::optional<BenchRun> ZOn =
        benchTcpMode(Opts, ZInput, ZSlices, CacheOn, &AOn);
    if (ZOff && ZOn) {
      ZipfViolations += zipfExactlyOnce(AOff, ZSlices, "cache-off");
      ZipfViolations += zipfExactlyOnce(AOn, ZSlices, "cache-on");
      if (ZOn->Stats.Cache.AuditMismatches) {
        ++ZipfViolations;
        std::fprintf(stderr,
                     "VIOLATION: zipf cache-on: %llu self-audit "
                     "mismatches\n",
                     static_cast<unsigned long long>(
                         ZOn->Stats.Cache.AuditMismatches));
      }
      if (ZOff->ThroughputRps > 0)
        ZipfSpeedup = ZOn->ThroughputRps / ZOff->ThroughputRps;
      JsonValue Z = JsonValue::object();
      Z.set("distribution", "zipf(s=1)");
      Z.set("requests", ZSlices);
      Z.set("cache_off", benchJson(*ZOff));
      JsonValue OnJ = benchJson(*ZOn);
      OnJ.set("cached_serves", AOn.CachedServes);
      OnJ.set("audited_serves", AOn.AuditedServes);
      OnJ.set("cache", ZOn->Stats.Cache.toJson());
      Z.set("cache_on", std::move(OnJ));
      Z.set("speedup", ZipfSpeedup);
      Z.set("audit_violations", ZipfViolations);
      Root.set("zipf", std::move(Z));
      std::printf("jslice_soak: zipf — cache off %.0f req/s, cache on "
                  "%.0f req/s (%.1fx), %llu/%llu cached, %llu audited, "
                  "%llu violations\n",
                  ZOff->ThroughputRps, ZOn->ThroughputRps, ZipfSpeedup,
                  static_cast<unsigned long long>(AOn.CachedServes),
                  static_cast<unsigned long long>(ZSlices),
                  static_cast<unsigned long long>(AOn.AuditedServes),
                  static_cast<unsigned long long>(ZipfViolations));
    } else {
      std::fprintf(stderr,
                   "jslice_soak: zipf bench skipped (no TCP listener)\n");
    }

    // The shard ladder: the same Zipf cache-on stream, split across
    // enough concurrent connections to feed every shard, at 1/2/4/8
    // reactor shards. Every rung carries the exactly-once audit; the
    // recorded hardware_concurrency says how much parallelism the
    // ladder could possibly show on this machine.
    std::vector<std::string> ZLines;
    {
      size_t Pos = 0, NL;
      while ((NL = ZInput.find('\n', Pos)) != std::string::npos) {
        ZLines.push_back(ZInput.substr(Pos, NL - Pos));
        Pos = NL + 1;
      }
    }
    const unsigned LadderClients = 8;
    double Rung1 = 0, Rung8 = 0;
    JsonValue Rungs = JsonValue::array();
    bool LadderOk = true;
    for (unsigned NS : {1u, 2u, 4u, 8u}) {
      Audit LA;
      std::optional<BenchRun> LR =
          benchTcpMulti(Opts, ZLines, NS, LadderClients, CacheOn, LA);
      if (!LR) {
        std::fprintf(stderr,
                     "jslice_soak: shard ladder skipped at %u shards "
                     "(no TCP listener)\n",
                     NS);
        LadderOk = false;
        break;
      }
      std::string Tag = "shards-" + std::to_string(NS);
      ZipfViolations += zipfExactlyOnce(LA, ZSlices, Tag.c_str());
      JsonValue E = JsonValue::object();
      E.set("shards", static_cast<uint64_t>(NS));
      E.set("clients", static_cast<uint64_t>(LadderClients));
      E.set("throughput_rps", LR->ThroughputRps);
      E.set("wall_ms", LR->WallMs);
      E.set("latency_p50_ms", LR->Stats.P50Ms);
      Rungs.push(std::move(E));
      if (NS == 1)
        Rung1 = LR->ThroughputRps;
      if (NS == 8)
        Rung8 = LR->ThroughputRps;
      std::printf("jslice_soak: shard ladder — %u shard%s: %.0f req/s "
                  "over %u connections\n",
                  NS, NS == 1 ? "" : "s", LR->ThroughputRps,
                  LadderClients);
    }
    if (LadderOk) {
      JsonValue Ladder = JsonValue::object();
      Ladder.set("distribution", "zipf(s=1)");
      Ladder.set("cache", "on");
      Ladder.set("requests", ZSlices);
      Ladder.set("rungs", std::move(Rungs));
      if (Rung1 > 0)
        Ladder.set("speedup_8v1", Rung8 / Rung1);
      Root.set("shard_ladder", std::move(Ladder));
    }
  }
#endif

  std::string Text = Root.str();
  if (!Opts.OutPath.empty()) {
    std::ofstream OutFile(Opts.OutPath, std::ios::trunc);
    if (!OutFile) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.OutPath.c_str());
      return 1;
    }
    OutFile << Text << "\n";
  }
  std::printf("%s\n", Text.c_str());
  std::printf("jslice_soak: bench — thread %.0f req/s p50 %.2fms | process "
              "%.0f req/s p50 %.2fms",
              Thread.ThroughputRps, Thread.Stats.P50Ms,
              Process.ThroughputRps, Process.Stats.P50Ms);
  if (Tcp)
    std::printf(" | tcp %.0f req/s p50 %.2fms", Tcp->ThroughputRps,
                Tcp->Stats.P50Ms);
  std::printf("\n");
  return ZipfViolations ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Cache-correctness audit sweep
//===----------------------------------------------------------------------===//

/// For each seed: generate a program (alternating dialects), request
/// every mined criterion twice through a fresh audit-every-hit server,
/// and hold the stream to three promises — identical requests slice
/// identically, the cache self-audit reports zero mismatches, and the
/// sweep as a whole actually produced cache hits (a vacuously green
/// sweep is a violation, not a pass).
int runAuditSweep(const SoakOptions &CliOpts) {
  SoakOptions Opts = CliOpts;
  Opts.CacheAuditEvery = 1;
  Opts.CacheEnabled = true;
  uint64_t Violations = 0, Hits = 0, Audits = 0, Pairs = 0, Served = 0;
  // Weiser (the last algorithm) deliberately bypasses the cache, so the
  // sweep rotates over the other nine.
  const size_t CachedAlgos =
      sizeof(AllAlgorithms) / sizeof(AllAlgorithms[0]) - 1;

  for (uint64_t SI = 0; SI != CliOpts.AuditSeeds; ++SI) {
    GenOptions Gen;
    Gen.Seed = Opts.Seed + SI;
    Gen.TargetStmts = Opts.TargetStmts;
    Gen.AllowGotos = (SI % 2) == 1;
    std::string Source = generateProgram(Gen);
    ErrorOr<Analysis> An = Analysis::fromSource(Source, Budget::unlimited());
    if (!An)
      continue;
    std::vector<Criterion> Crits = reachableWriteCriteria(*An);
    if (Crits.empty())
      continue;
    if (Crits.size() > 3)
      Crits.resize(3); // Three criteria per program keeps 500 seeds fast.

    std::ostringstream Stream;
    for (size_t CI = 0; CI != Crits.size(); ++CI) {
      ServiceRequest R;
      R.Program = Source;
      R.Line = Crits[CI].Line;
      R.Vars = Crits[CI].Vars;
      R.Algorithm = AllAlgorithms[(SI + CI) % CachedAlgos];
      R.Id = "a" + std::to_string(CI);
      Stream << R.toJson().str() << "\n";
      R.Id = "b" + std::to_string(CI);
      Stream << R.toJson().str() << "\n";
    }

    Audit A;
    ServerStats Final;
    std::string Text =
        serveAndAudit(Opts, Stream.str(), /*Threads=*/1, A, &Final);
    Violations += A.Violations;

    // Pair the cold build with its cached replay.
    std::map<std::string, std::pair<std::string, std::string>> ById;
    std::istringstream Lines(Text);
    std::string Line;
    while (std::getline(Lines, Line)) {
      std::optional<JsonValue> V = JsonValue::parse(Line);
      if (!V || !V->isObject())
        continue;
      const JsonValue *Id = V->find("id");
      const JsonValue *Status = V->find("status");
      if (!Id || !Id->isString() || !Status || !Status->isString())
        continue;
      const JsonValue *Ls = V->find("lines");
      ById[Id->asString()] = {Status->asString(), Ls ? Ls->str() : ""};
    }
    for (size_t CI = 0; CI != Crits.size(); ++CI) {
      auto AIt = ById.find("a" + std::to_string(CI));
      auto BIt = ById.find("b" + std::to_string(CI));
      if (AIt == ById.end() || BIt == ById.end()) {
        ++Violations;
        std::fprintf(stderr,
                     "VIOLATION: seed %llu criterion %zu lost a response\n",
                     static_cast<unsigned long long>(Gen.Seed), CI);
        continue;
      }
      ++Pairs;
      if (AIt->second != BIt->second) {
        ++Violations;
        std::fprintf(stderr,
                     "VIOLATION: seed %llu criterion %zu: cold build and "
                     "cached replay disagree (%s/%s vs %s/%s)\n",
                     static_cast<unsigned long long>(Gen.Seed), CI,
                     AIt->second.first.c_str(), AIt->second.second.c_str(),
                     BIt->second.first.c_str(), BIt->second.second.c_str());
      }
      if (AIt->second.first == "ok")
        ++Served;
    }
    if (std::optional<CacheStats> CS =
            checkCacheStats(Opts, Final, Violations)) {
      Hits += CS->Hits;
      Audits += CS->Audits;
    }
  }

  if (!Hits || !Audits) {
    ++Violations;
    std::fprintf(stderr, "VIOLATION: audit sweep produced no %s — the "
                         "sweep proved nothing\n",
                 Hits ? "audited hits" : "cache hits");
  }
  std::printf("jslice_soak: audit sweep — %llu seeds, %llu request pairs "
              "(%llu served ok), %llu hits, %llu audits, %llu violations\n",
              static_cast<unsigned long long>(CliOpts.AuditSeeds),
              static_cast<unsigned long long>(Pairs),
              static_cast<unsigned long long>(Served),
              static_cast<unsigned long long>(Hits),
              static_cast<unsigned long long>(Audits),
              static_cast<unsigned long long>(Violations));
  return Violations ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  SoakOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> std::optional<std::string> {
      if (I + 1 >= argc)
        return std::nullopt;
      return std::string(argv[++I]);
    };

    if (Arg == "--requests" || Arg == "--programs" || Arg == "--stmts" ||
        Arg == "--threads" || Arg == "--seed" || Arg == "--fault-stride" ||
        Arg == "--workers" || Arg == "--kill-interval-ms" ||
        Arg == "--breaker-threshold" || Arg == "--net-clients" ||
        Arg == "--shards" || Arg == "--upgrades" ||
        Arg == "--cache-entries" || Arg == "--cache-bytes" ||
        Arg == "--cache-audit-every" || Arg == "--audit-seeds") {
      std::optional<std::string> Value = NextValue();
      std::optional<uint64_t> N = Value ? parseCount(*Value) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: %s expects a number\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--requests")
        Opts.Requests = *N;
      else if (Arg == "--programs")
        Opts.Programs = static_cast<unsigned>(std::max<uint64_t>(1, *N));
      else if (Arg == "--stmts")
        Opts.TargetStmts = static_cast<unsigned>(*N);
      else if (Arg == "--threads")
        Opts.Threads = static_cast<unsigned>(*N);
      else if (Arg == "--seed")
        Opts.Seed = *N;
      else if (Arg == "--workers")
        Opts.Workers = static_cast<unsigned>(*N);
      else if (Arg == "--kill-interval-ms")
        Opts.KillIntervalMs = std::max<uint64_t>(1, *N);
      else if (Arg == "--breaker-threshold")
        Opts.BreakerThreshold = static_cast<unsigned>(*N);
      else if (Arg == "--net-clients")
        Opts.NetClients = static_cast<unsigned>(std::max<uint64_t>(1, *N));
      else if (Arg == "--shards")
        Opts.Shards = static_cast<unsigned>(*N);
      else if (Arg == "--upgrades")
        Opts.Upgrades = std::max<uint64_t>(1, *N);
      else if (Arg == "--cache-entries")
        Opts.CacheEntries = *N;
      else if (Arg == "--cache-bytes")
        Opts.CacheBytes = *N;
      else if (Arg == "--cache-audit-every")
        Opts.CacheAuditEvery = *N;
      else if (Arg == "--audit-seeds")
        Opts.AuditSeeds = *N;
      else
        Opts.FaultStride = *N;
    } else if (Arg == "--cache") {
      std::optional<std::string> Value = NextValue();
      if (!Value || (*Value != "on" && *Value != "off")) {
        std::fprintf(stderr, "error: --cache expects 'on' or 'off'\n");
        return usage();
      }
      Opts.CacheEnabled = *Value == "on";
    } else if (Arg == "--repl-ack") {
      std::optional<std::string> Value = NextValue();
      if (!Value || !parseReplAckPolicyName(*Value, Opts.ReplAck)) {
        std::fprintf(stderr,
                     "error: --repl-ack expects async, flush, or sync\n");
        return usage();
      }
    } else if (Arg == "--journal" || Arg == "--quarantine" ||
               Arg == "--out" || Arg == "--isolate" ||
               Arg == "--serve-bin") {
      std::optional<std::string> Value = NextValue();
      if (!Value) {
        std::fprintf(stderr, "error: %s requires an argument\n", Arg.c_str());
        return usage();
      }
      if (Arg == "--journal")
        Opts.JournalPath = *Value;
      else if (Arg == "--quarantine")
        Opts.QuarantineDir = *Value;
      else if (Arg == "--out")
        Opts.OutPath = *Value;
      else if (Arg == "--serve-bin")
        Opts.ServeBin = *Value;
      else if (*Value == "process")
        Opts.IsolateProcess = true;
      else if (*Value == "thread")
        Opts.IsolateProcess = false;
      else {
        std::fprintf(stderr,
                     "error: --isolate expects 'thread' or 'process'\n");
        return usage();
      }
    } else if (Arg == "--crash-matrix") {
      Opts.CrashMatrix = true;
    } else if (Arg == "--disk-chaos") {
      Opts.DiskChaos = true;
    } else if (Arg == "--upgrade-matrix") {
      Opts.UpgradeMatrix = true;
    } else if (Arg == "--failover-matrix") {
      Opts.FailoverMatrix = true;
    } else if (Arg == "--bench") {
      Opts.Bench = true;
    } else if (Arg == "--net") {
      Opts.Net = true;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  if (Opts.AuditSeeds)
    return runAuditSweep(Opts);
  if (Opts.DiskChaos)
    return runDiskChaos(Opts);
  if (Opts.UpgradeMatrix)
    return runUpgradeMatrix(Opts);
  if (Opts.FailoverMatrix)
    return runFailoverMatrix(Opts);
  if (Opts.Net)
    return runNetSoak(Opts); // --crash-matrix layers kills on top.
  if (Opts.CrashMatrix)
    return runCrashMatrix(Opts);
  if (Opts.Bench)
    return runBench(Opts);
  return Opts.FaultStride ? runFaultSweep(Opts) : runVolumeSoak(Opts);
}
