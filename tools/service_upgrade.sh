#!/usr/bin/env bash
# Zero-downtime upgrade acceptance for the slicing service (DESIGN.md,
# "Zero-downtime operations"): drive one jslice_serve dynasty through
# the full hot-restart protocol over a live socket and assert the
# operator-visible contract at every step:
#
#   1. `jslice_client --health` answers exit 0 with the generation.
#   2. SIGUSR2 hands the port to generation 2 under traffic: the old
#      leader drains, exits 0, and writes exactly one clean-shutdown
#      journal record; requests keep landing throughout.
#   3. A second SIGUSR2 inside a pending handoff is refused
#      deterministically (logged), while the first upgrade completes.
#   4. SIGTERM racing an in-flight upgrade: shutdown wins — the unready
#      successor is rolled back, the leader drains exactly once, and
#      the journal gains exactly one more shutdown record.
#   5. A restart over the final journal quarantines nothing.
#
#   service_upgrade.sh <jslice_serve> <workdir> <jslice_client>
set -u

SERVE="$1"
WORK="$2"
CLIENT="$3"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

WAL="wal.jsonl"
REQ='{"id":"r%d","program":"read(a);\nif (a > 0) { write(a); }\nwrite(a);\n","line":3,"vars":["a"]}'
PIDS=()

cleanup() {
  for P in "${PIDS[@]}"; do
    kill -9 "$P" 2>/dev/null
  done
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1"
  echo "--- err.log ---"
  cat err.log 2>/dev/null
  exit 1
}

# Waits until err.log contains $1 (all generations share the inherited
# stderr, so the whole dynasty logs into one file). Sanitized builds
# pay heavy respawn costs, so the deadline is generous.
wait_log() {
  for _ in $(seq 1 300); do
    grep -qF "$1" err.log 2>/dev/null && return 0
    sleep 0.1
  done
  return 1
}

wait_gone() {
  for _ in $(seq 1 300); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  return 1
}

# Scrapes the pid the leader reported for generation $1.
spawned_pid() {
  sed -n "s/^jslice_serve: spawning generation $1 (pid \([0-9]*\))\$/\1/p" \
    err.log | head -1
}

send_request() {
  # Bash substitution, not printf: the \n escapes in the program text
  # must reach the server as two characters inside the JSON string.
  # Attempts are generous so a request launched mid-handoff rides the
  # retry ladder onto the successor.
  "$CLIENT" --connect 127.0.0.1:"$PORT" --attempts 12 --backoff-ms 20 \
    --request "${REQ/r%d/r$1}"
}

# --- Generation 1 -----------------------------------------------------
# The 300ms readiness delay gives every successor a deterministic
# pre-ready window for the refusal and SIGTERM races below.
"$SERVE" --listen 127.0.0.1:0 --journal "$WAL" --quarantine quarantine \
  --threads 2 --ready-delay-ms 300 > out.log 2> err.log &
PID1=$!
PIDS+=("$PID1")

PORT=""
for _ in $(seq 1 300); do
  PORT=$(sed -n 's/^jslice_serve: listening on [^:]*:\([0-9]*\)$/\1/p' \
           err.log 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never reported its port"

# Health probe: exit 0 and the generation is visible.
"$CLIENT" --connect 127.0.0.1:"$PORT" --health > health.log \
  || fail "health probe on generation 1 exited $? (want 0)"
grep -q '^generation: 1$' health.log \
  || fail "health answer lacks generation 1: $(cat health.log)"

send_request 1 >> responses.log || fail "request before upgrade failed"

# --- SIGUSR2: hand off to generation 2 under traffic ------------------
kill -USR2 "$PID1"
wait_log "generation 2 ready; draining generation 1" \
  || fail "generation 2 never became ready"
wait_gone "$PID1" || fail "generation 1 never exited after handoff"
wait "$PID1"
RC=$?
[ "$RC" -eq 0 ] || fail "generation 1 exited $RC after handoff (want 0)"
PID2=$(spawned_pid 2)
[ -n "$PID2" ] || fail "generation 2 pid was never logged"
PIDS+=("$PID2")

send_request 2 >> responses.log || fail "request after upgrade failed"
"$CLIENT" --connect 127.0.0.1:"$PORT" --health > health.log \
  || fail "health probe on generation 2 exited $? (want 0)"
grep -q '^generation: 2$' health.log \
  || fail "health answer lacks generation 2: $(cat health.log)"

# The successor noticed the predecessor's exit and ran handoff
# recovery over the shared journal — with nothing in flight at the
# handoff, nothing may be quarantined.
wait_log "generation predecessor (pid $PID1) exited" \
  || fail "generation 2 never ran handoff recovery"
grep -q "exited; handoff recovery quarantined 0 requests" err.log \
  || fail "clean handoff quarantined requests"

# --- Double SIGUSR2: the second is refused, the first completes -------
kill -USR2 "$PID2"
wait_log "spawning generation 3" || fail "generation 3 was never spawned"
kill -USR2 "$PID2" # Lands inside generation 3's 300ms pre-ready window.
wait_log "upgrade already in progress; refusing" \
  || fail "second SIGUSR2 was not refused"
wait_log "generation 3 ready; draining generation 2" \
  || fail "generation 3 never became ready"
wait_gone "$PID2" || fail "generation 2 never exited after handoff"
PID3=$(spawned_pid 3)
[ -n "$PID3" ] || fail "generation 3 pid was never logged"
PIDS+=("$PID3")
# Wait for generation 3's handoff recovery: it compacts generation 2's
# clean-shutdown record out of the shared journal, which makes the
# exactly-once count below deterministic.
wait_log "generation predecessor (pid $PID2) exited" \
  || fail "generation 3 never ran handoff recovery"

send_request 3 >> responses.log || fail "request on generation 3 failed"

# --- SIGTERM racing an in-flight upgrade: drain wins, exactly once ----
kill -USR2 "$PID3"
wait_log "spawning generation 4" || fail "generation 4 was never spawned"
PID4=$(spawned_pid 4)
[ -n "$PID4" ] && PIDS+=("$PID4")
kill -TERM "$PID3"
wait_log "rolling back to generation 3" \
  || fail "unready generation 4 was not rolled back under SIGTERM"
wait_gone "$PID3" || fail "generation 3 never drained after SIGTERM"
[ -n "$PID4" ] && { wait_gone "$PID4" || fail "generation 4 leaked"; }

# Exactly-once drain under the race: each handoff recovery compacts
# the predecessor's clean-shutdown record away, so the final journal
# carries generation 3's record alone — two would mean the SIGTERM and
# the abandoned upgrade both drained. The stderr marker is printed
# only on the SIGTERM path, so it too must appear exactly once.
N=$(grep -c '"event":"shutdown"' "$WAL")
[ "$N" -eq 1 ] || fail "want exactly 1 shutdown record in the final\
 journal (the SIGTERM drain, not doubled), got $N"
N=$(grep -c "drained and shut down cleanly" err.log)
[ "$N" -eq 1 ] || fail "want exactly 1 clean-shutdown log line, got $N"

OK=$(grep -c '"status":"ok"' responses.log)
[ "$OK" -eq 3 ] || fail "want 3 ok responses across the dynasty, got $OK"

# --- The final journal is clean: a restart quarantines nothing --------
printf '' | "$SERVE" --journal "$WAL" > /dev/null 2> restart.log
grep -q "quarantined" restart.log \
  && fail "restart after clean upgrades quarantined requests"

echo "upgrade OK (handoff, refusal, sigterm race, clean journal)"
