//===- tests/ServiceTest.cpp - Slicing-service unit tests ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The service layer, bottom up: the JSON codec, the wire protocol,
/// the write-ahead journal with its poison recovery, and the Server's
/// end-to-end request handling (serve, refuse, cancel, quarantine,
/// stats) over in-memory streams.
///
//===----------------------------------------------------------------------===//

#include "service/Journal.h"
#include "service/JournalIo.h"
#include "service/Replication.h"
#include "service/Server.h"
#include "support/Pipe.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

using namespace jslice;

namespace {

const char *TinyProgram = "read(a);\nwrite(a);\n";

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(JsonTest, SerializesSortedCompactObjects) {
  JsonValue V = JsonValue::object();
  V.set("b", 2);
  V.set("a", std::string("x"));
  V.set("c", true);
  EXPECT_EQ(V.str(), "{\"a\":\"x\",\"b\":2,\"c\":true}");
}

TEST(JsonTest, RoundTripsStringsWithEscapes) {
  JsonValue V = JsonValue::object();
  V.set("s", std::string("line1\nline2\t\"quoted\"\\x\x01"));
  std::optional<JsonValue> Back = JsonValue::parse(V.str());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->find("s")->asString(), "line1\nline2\t\"quoted\"\\x\x01");
}

TEST(JsonTest, ParsesNestedStructures) {
  std::optional<JsonValue> V = JsonValue::parse(
      "{\"a\": [1, 2.5, null, {\"b\": false}], \"c\": \"\\u0041\"}");
  ASSERT_TRUE(V.has_value());
  ASSERT_TRUE(V->find("a")->isArray());
  EXPECT_EQ(V->find("a")->elements().size(), 4u);
  EXPECT_EQ(V->find("c")->asString(), "A");
}

TEST(JsonTest, RejectsGarbageWithAReason) {
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("{broken", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("").has_value());
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string Deep(200, '[');
  EXPECT_FALSE(JsonValue::parse(Deep).has_value());
}

/// \p N arrays wrapped around a single integer.
std::string nestedArrays(unsigned N) {
  return std::string(N, '[') + "1" + std::string(N, ']');
}

TEST(JsonTest, NestingAtTheDepthLimitParsesAndOneDeeperFails) {
  // MaxDepth is 64: the innermost scalar sits at depth N for N arrays.
  EXPECT_TRUE(JsonValue::parse(nestedArrays(64)).has_value());
  std::string Error;
  EXPECT_FALSE(JsonValue::parse(nestedArrays(65), &Error).has_value());
  EXPECT_NE(Error.find("deep"), std::string::npos);
}

TEST(JsonTest, DecodesSurrogatePairs) {
  // U+1F600 as \uD83D\uDE00 -> 4-byte UTF-8.
  std::optional<JsonValue> V =
      JsonValue::parse("{\"s\":\"\\uD83D\\uDE00\"}");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->find("s")->asString(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, LoneSurrogatesBecomeReplacementCharacters) {
  const char *Fffd = "\xEF\xBF\xBD"; // U+FFFD in UTF-8.
  std::optional<JsonValue> High = JsonValue::parse("{\"s\":\"\\uD800\"}");
  ASSERT_TRUE(High.has_value());
  EXPECT_EQ(High->find("s")->asString(), Fffd);

  std::optional<JsonValue> Low = JsonValue::parse("{\"s\":\"\\uDFFF\"}");
  ASSERT_TRUE(Low.has_value());
  EXPECT_EQ(Low->find("s")->asString(), Fffd);

  // High surrogate chased by a non-surrogate escape: U+FFFD, then the
  // second escape decodes on its own.
  std::optional<JsonValue> Chased =
      JsonValue::parse("{\"s\":\"\\uD800\\u0041\"}");
  ASSERT_TRUE(Chased.has_value());
  EXPECT_EQ(Chased->find("s")->asString(), std::string(Fffd) + "A");
}

TEST(JsonTest, RejectsMalformedUnicodeEscapes) {
  EXPECT_FALSE(JsonValue::parse("{\"s\":\"\\u12\"}").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"s\":\"\\u12GZ\"}").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"s\":\"\\uD83D\\u12\"}").has_value());
}

TEST(JsonTest, RawInvalidUtf8PassesThroughByteTransparently) {
  // The parser validates JSON structure, not UTF-8: raw bytes in
  // strings survive untouched (and re-serialize untouched).
  std::string Text = "{\"s\":\"\xFF\xFE ok\"}";
  std::optional<JsonValue> V = JsonValue::parse(Text);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->find("s")->asString(), "\xFF\xFE ok");
  EXPECT_EQ(V->str(), Text);
}

/// Every line of the checked-in corpus file, skipping blanks.
std::vector<std::string> corpusLines(const std::string &Name) {
  std::ifstream In(std::string(JSLICE_REPO_ROOT) + "/tests/json_corpus/" +
                   Name);
  EXPECT_TRUE(In.good()) << "missing corpus file " << Name;
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

TEST(JsonCorpusTest, AcceptCorpusParsesAndReserializes) {
  std::vector<std::string> Lines = corpusLines("accept.jsonl");
  ASSERT_FALSE(Lines.empty());
  for (const std::string &Line : Lines) {
    std::string Error;
    std::optional<JsonValue> V = JsonValue::parse(Line, &Error);
    EXPECT_TRUE(V.has_value()) << Line << " -> " << Error;
    if (!V)
      continue;
    // Our own serialization must be a fixpoint: parse(str(x)) == str(x).
    std::string Out = V->str();
    std::optional<JsonValue> Back = JsonValue::parse(Out);
    ASSERT_TRUE(Back.has_value()) << Out;
    EXPECT_EQ(Back->str(), Out) << Line;
  }
}

TEST(JsonCorpusTest, RejectCorpusFailsWithPositions) {
  std::vector<std::string> Lines = corpusLines("reject.jsonl");
  ASSERT_FALSE(Lines.empty());
  for (const std::string &Line : Lines) {
    std::string Error;
    EXPECT_FALSE(JsonValue::parse(Line, &Error).has_value())
        << "corpus line unexpectedly parsed: " << Line;
    EXPECT_NE(Error.find("byte "), std::string::npos) << Line;
  }
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(RequestTest, ResponseStatusNamesRoundTrip) {
  const ResponseStatus All[] = {
      ResponseStatus::Ok,        ResponseStatus::ResourceExhausted,
      ResponseStatus::Error,     ResponseStatus::BadRequest,
      ResponseStatus::Cancelled, ResponseStatus::Poisoned,
      ResponseStatus::Crashed,   ResponseStatus::Shed,
  };
  for (ResponseStatus S : All) {
    std::optional<ResponseStatus> Back =
        responseStatusByName(responseStatusName(S));
    ASSERT_TRUE(Back.has_value()) << responseStatusName(S);
    EXPECT_EQ(*Back, S);
  }
  EXPECT_FALSE(responseStatusByName("no-such-status").has_value());
  EXPECT_FALSE(responseStatusByName("").has_value());
}

TEST(RequestTest, ParsesSliceRequestWithAllFields) {
  ParsedRequest P = parseRequestLine(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"],\"algorithm\":\"lyle\",\"budget_ms\":250,"
      "\"max_steps\":1000}");
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Request.Kind, RequestKind::Slice);
  EXPECT_EQ(P.Request.Id, "r1");
  EXPECT_EQ(P.Request.Line, 2u);
  EXPECT_EQ(P.Request.Vars, std::vector<std::string>{"a"});
  EXPECT_EQ(P.Request.Algorithm, SliceAlgorithm::Lyle);
  EXPECT_EQ(P.Request.BudgetMs, 250u);
  EXPECT_EQ(P.Request.MaxSteps, 1000u);
}

TEST(RequestTest, ParsesControlRequests) {
  ParsedRequest Cancel = parseRequestLine("{\"cancel\": \"r9\"}");
  ASSERT_TRUE(Cancel.Ok);
  EXPECT_EQ(Cancel.Request.Kind, RequestKind::Cancel);
  EXPECT_EQ(Cancel.Request.CancelTarget, "r9");

  ParsedRequest Stats = parseRequestLine("{\"stats\": true}");
  ASSERT_TRUE(Stats.Ok);
  EXPECT_EQ(Stats.Request.Kind, RequestKind::Stats);
}

TEST(RequestTest, RejectsMalformedRequestsWithReasons) {
  EXPECT_FALSE(parseRequestLine("not json").Ok);
  EXPECT_FALSE(parseRequestLine("[1,2]").Ok);
  EXPECT_FALSE(parseRequestLine("{\"program\":\"x\",\"line\":1}").Ok);
  EXPECT_FALSE(
      parseRequestLine("{\"id\":\"r\",\"program\":\"x\",\"line\":0}").Ok);
  EXPECT_FALSE(parseRequestLine("{\"id\":\"r\",\"program\":\"x\",\"line\":1,"
                                "\"algorithm\":\"nonsense\"}")
                   .Ok);
  // The best-effort id still comes back for the error response.
  ParsedRequest P =
      parseRequestLine("{\"id\":\"r7\",\"program\":\"x\",\"line\":-4}");
  EXPECT_FALSE(P.Ok);
  EXPECT_EQ(P.Id, "r7");
}

TEST(RequestTest, ContentKeyTracksContentNotId) {
  ServiceRequest A;
  A.Id = "first";
  A.Program = TinyProgram;
  A.Line = 2;
  A.Vars = {"a"};
  ServiceRequest B = A;
  B.Id = "second";
  EXPECT_EQ(A.contentKey(), B.contentKey());
  B.Line = 1;
  EXPECT_NE(A.contentKey(), B.contentKey());
}

TEST(RequestTest, JournalRoundTripPreservesTheRequest) {
  ServiceRequest R;
  R.Id = "r1";
  R.Program = TinyProgram;
  R.Line = 2;
  R.Vars = {"a"};
  R.Algorithm = SliceAlgorithm::BallHorwitz;
  R.MaxSteps = 77;
  std::optional<JsonValue> V = JsonValue::parse(R.toJson().str());
  ASSERT_TRUE(V.has_value());
  ServiceRequest Back;
  ASSERT_TRUE(requestFromJson(*V, Back));
  EXPECT_EQ(Back.Program, R.Program);
  EXPECT_EQ(Back.Line, R.Line);
  EXPECT_EQ(Back.Vars, R.Vars);
  EXPECT_EQ(Back.Algorithm, R.Algorithm);
  EXPECT_EQ(Back.MaxSteps, R.MaxSteps);
  EXPECT_EQ(Back.contentKey(), R.contentKey());
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(JournalTest, UnmatchedBeginSurvivesScanning) {
  std::string Path = ::testing::TempDir() + "jslice_journal_test.jsonl";
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    ServiceRequest Done;
    Done.Id = "done";
    Done.Program = TinyProgram;
    Done.Line = 2;
    J.begin(Done);
    J.end("done", "ok");
    ServiceRequest Stuck = Done;
    Stuck.Id = "stuck";
    J.begin(Stuck);
  }
  // A torn tail record (the crash cut the write short) must be skipped.
  {
    std::ofstream Out(Path, std::ios::app);
    Out << "{\"event\":\"begin\",\"id\":\"to";
  }
  std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
  ASSERT_EQ(Poisoned.size(), 1u);
  EXPECT_EQ(Poisoned.front().Id, "stuck");
  EXPECT_EQ(Poisoned.front().Request.Program, TinyProgram);
  std::remove(Path.c_str());
}

TEST(JournalTest, MissingFileScansEmpty) {
  EXPECT_TRUE(scanJournal(::testing::TempDir() + "no_such_journal").empty());
}

TEST(JournalTest, QuarantineWritesReplayableRepro) {
  std::string Dir = ::testing::TempDir() + "jslice_quarantine_test";
  PoisonedRequest P;
  P.Id = "victim";
  P.Request.Id = "victim";
  P.Request.Program = TinyProgram;
  P.Request.Line = 2;
  std::string Path = quarantinePoisoned(Dir, P);
  ASSERT_FALSE(Path.empty());
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), TinyProgram);
}

TEST(JournalTest, RotationKeepsOnlyUnmatchedBeginsAndReplaySurvivesIt) {
  std::string Path = ::testing::TempDir() + "jslice_journal_rotate.jsonl";
  std::remove(Path.c_str());
  uint64_t Written = 0;
  {
    Journal J;
    ASSERT_TRUE(J.open(Path, /*RotateBytes=*/1024));
    // One request that never completes, buried under dozens of
    // bracketed pairs: every rotation must carry the open begin
    // forward even as the bracketed history is dropped.
    ServiceRequest Stuck;
    Stuck.Id = "stuck";
    Stuck.Program = TinyProgram;
    Stuck.Line = 2;
    Stuck.Vars = {"a"};
    J.begin(Stuck);
    for (unsigned I = 0; I != 50; ++I) {
      ServiceRequest R = Stuck;
      R.Id = "r" + std::to_string(I);
      J.begin(R);
      Written += 200; // Rough per-pair size: enough to force rotations.
      J.end(R.Id, "ok");
    }
    // The file stayed near the rotation bound instead of growing with
    // the full history.
    EXPECT_LT(J.bytes(), 2048u);
    EXPECT_LT(J.bytes(), Written);
  }
  // Replay across the rotation boundary: the stuck request is intact,
  // program and all; the 50 completed pairs are gone.
  std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
  ASSERT_EQ(Poisoned.size(), 1u);
  EXPECT_EQ(Poisoned.front().Id, "stuck");
  EXPECT_EQ(Poisoned.front().Request.Program, TinyProgram);
  EXPECT_EQ(Poisoned.front().Request.Vars, std::vector<std::string>{"a"});
  std::remove(Path.c_str());
}

TEST(JournalTest, CompactKeepsOpenBeginsAndEmptiesABracketedJournal) {
  std::string Path = ::testing::TempDir() + "jslice_journal_compact.jsonl";
  std::remove(Path.c_str());
  Journal J;
  ASSERT_TRUE(J.open(Path));
  ServiceRequest R;
  R.Id = "open";
  R.Program = TinyProgram;
  R.Line = 2;
  J.begin(R);
  for (unsigned I = 0; I != 5; ++I) {
    ServiceRequest Pair = R;
    Pair.Id = "p" + std::to_string(I);
    J.begin(Pair);
    J.end(Pair.Id, "ok");
  }
  EXPECT_EQ(J.compact(), 1u);
  std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
  ASSERT_EQ(Poisoned.size(), 1u);
  EXPECT_EQ(Poisoned.front().Id, "open");

  // Close the last pair: a fully-bracketed journal compacts to empty.
  J.end("open", "ok");
  EXPECT_EQ(J.compact(), 0u);
  EXPECT_EQ(J.bytes(), 0u);
  EXPECT_TRUE(scanJournal(Path).empty());
  std::remove(Path.c_str());
}

TEST(JournalTest, CleanShutdownRecordIsDetectedAndSkippedByReplay) {
  std::string Path = ::testing::TempDir() + "jslice_journal_shutdown.jsonl";
  std::remove(Path.c_str());
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    ServiceRequest R;
    R.Id = "r1";
    R.Program = TinyProgram;
    R.Line = 2;
    J.begin(R);
    J.end("r1", "ok");
    EXPECT_FALSE(journalEndsWithCleanShutdown(Path));
    J.shutdownRecord();
  }
  EXPECT_TRUE(journalEndsWithCleanShutdown(Path));
  // The id-less shutdown record is bookkeeping, not a request: replay
  // must not try to quarantine it.
  EXPECT_TRUE(scanJournal(Path).empty());

  // New work after the marker means the shutdown is no longer the last
  // word: a crash now is a dirty crash.
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    ServiceRequest R;
    R.Id = "r2";
    R.Program = TinyProgram;
    R.Line = 2;
    J.begin(R);
  }
  EXPECT_FALSE(journalEndsWithCleanShutdown(Path));
  ASSERT_EQ(scanJournal(Path).size(), 1u);
  std::remove(Path.c_str());
}

TEST(JournalTest, GenerationStampsAttributeUnmatchedBegins) {
  std::string Path = ::testing::TempDir() + "jslice_journal_gen.jsonl";
  std::remove(Path.c_str());
  // Two generations append to the same file during an upgrade overlap;
  // each unmatched begin must carry its owner's stamp.
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    J.setGeneration(1);
    ServiceRequest R;
    R.Id = "old-stuck";
    R.Program = TinyProgram;
    R.Line = 2;
    J.begin(R);
  }
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    J.setGeneration(2);
    ServiceRequest R;
    R.Id = "new-stuck";
    R.Program = TinyProgram;
    R.Line = 1;
    J.begin(R);
  }
  std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
  ASSERT_EQ(Poisoned.size(), 2u);
  for (const PoisonedRequest &P : Poisoned) {
    if (P.Id == "old-stuck")
      EXPECT_EQ(P.Gen, 1u);
    else if (P.Id == "new-stuck")
      EXPECT_EQ(P.Gen, 2u);
    else
      ADD_FAILURE() << "unexpected poisoned id " << P.Id;
  }
  std::remove(Path.c_str());
}

TEST(JournalTest, BatchAndOffPoliciesStillRecordEverything) {
  // The sync policy trades power-loss durability for throughput; a
  // kill -9 (the process dies, the OS survives) must lose nothing
  // under any policy, so the unmatched-begin scan sees the same world.
  for (JournalSync Sync : {JournalSync::Batch, JournalSync::Off}) {
    std::string Path = ::testing::TempDir() + "jslice_journal_sync.jsonl";
    std::remove(Path.c_str());
    {
      Journal J;
      ASSERT_TRUE(J.open(Path, /*RotateBytes=*/0, Sync,
                         /*FlushIntervalMs=*/5));
      ServiceRequest R;
      R.Id = "done";
      R.Program = TinyProgram;
      R.Line = 2;
      J.begin(R);
      J.end("done", "ok");
      R.Id = "stuck";
      J.begin(R);
    }
    std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
    ASSERT_EQ(Poisoned.size(), 1u) << journalSyncName(Sync);
    EXPECT_EQ(Poisoned.front().Id, "stuck");
    std::remove(Path.c_str());
  }
}

TEST(JournalTest, SyncPolicyNamesRoundTrip) {
  for (JournalSync Sync :
       {JournalSync::Full, JournalSync::Batch, JournalSync::Off}) {
    JournalSync Back = JournalSync::Full;
    ASSERT_TRUE(parseJournalSyncName(journalSyncName(Sync), Back));
    EXPECT_EQ(Back, Sync);
  }
  JournalSync Out;
  EXPECT_FALSE(parseJournalSyncName("sometimes", Out));
  EXPECT_FALSE(parseJournalSyncName("", Out));
}

TEST(JournalTest, FailurePolicyNamesRoundTrip) {
  for (JournalFailure F :
       {JournalFailure::Shed, JournalFailure::Degrade, JournalFailure::Abort}) {
    JournalFailure Back = JournalFailure::Shed;
    ASSERT_TRUE(parseJournalFailureName(journalFailureName(F), Back));
    EXPECT_EQ(Back, F);
  }
  JournalFailure Out;
  EXPECT_FALSE(parseJournalFailureName("panic", Out));
  EXPECT_FALSE(parseJournalFailureName("", Out));
}

//===----------------------------------------------------------------------===//
// Journal: checksummed framing and fault tolerance
//===----------------------------------------------------------------------===//

/// Writes a small journal — one bracketed pair, one unmatched begin —
/// and returns its path.
std::string writeSmallJournal(const std::string &Name,
                              bool WithShutdown = false) {
  std::string Path = ::testing::TempDir() + Name;
  std::remove(Path.c_str());
  Journal J;
  EXPECT_TRUE(J.open(Path));
  ServiceRequest R;
  R.Id = "done";
  R.Program = TinyProgram;
  R.Line = 2;
  R.Vars = {"a"};
  J.begin(R);
  J.end("done", "ok");
  R.Id = "stuck";
  J.begin(R);
  if (WithShutdown)
    J.shutdownRecord();
  return Path;
}

TEST(JournalTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector: any polynomial mix-up or
  // reflection bug changes this constant.
  EXPECT_EQ(journalCrc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(journalCrc32(""), 0u);
}

TEST(JournalTest, RecordsAreChecksummedAndSequenced) {
  std::string Path = writeSmallJournal("jslice_journal_crc.jsonl");
  std::ifstream In(Path);
  std::string Line;
  uint64_t LastSeq = 0, Lines = 0;
  while (std::getline(In, Line)) {
    uint64_t Seq = 0;
    EXPECT_EQ(verifyJournalLine(Line, &Seq), JournalLineCheck::Valid) << Line;
    EXPECT_GT(Seq, LastSeq) << "sequence must be strictly monotonic";
    LastSeq = Seq;
    ++Lines;
  }
  EXPECT_EQ(Lines, 3u);

  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_TRUE(Scan.Exists);
  EXPECT_EQ(Scan.Records, 3u);
  EXPECT_EQ(Scan.LegacyRecords, 0u);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_EQ(Scan.SeqRegressions, 0u);
  EXPECT_FALSE(Scan.TornTail);
  ASSERT_EQ(Scan.InFlight.size(), 1u);
  EXPECT_EQ(Scan.InFlight.front().Id, "stuck");
  std::remove(Path.c_str());
}

TEST(JournalTest, FlippingAnyByteFailsVerification) {
  std::string Path = writeSmallJournal("jslice_journal_flip.jsonl");
  std::ifstream In(Path);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  for (size_t I = 0; I != Line.size(); ++I) {
    std::string Mutated = Line;
    Mutated[I] ^= 0x01;
    EXPECT_NE(verifyJournalLine(Mutated), JournalLineCheck::Valid)
        << "byte " << I << " flip went undetected: " << Mutated;
  }
  std::remove(Path.c_str());
}

TEST(JournalTest, LegacyUnchecksummedJournalStaysReadable) {
  // A journal written before checksums: no crc, no seq. Recovery and
  // the appender must both accept it (upgrade compatibility).
  std::string Path = ::testing::TempDir() + "jslice_journal_legacy.jsonl";
  std::remove(Path.c_str());
  ServiceRequest R;
  R.Id = "old-stuck";
  R.Program = TinyProgram;
  R.Line = 2;
  {
    std::ofstream Out(Path);
    JsonValue Done = JsonValue::object();
    Done.set("event", "begin");
    Done.set("id", "old-done");
    ServiceRequest D = R;
    D.Id = "old-done";
    Done.set("request", D.toJson());
    Out << Done.str() << "\n";
    JsonValue End = JsonValue::object();
    End.set("event", "end");
    End.set("id", "old-done");
    End.set("status", "ok");
    Out << End.str() << "\n";
    JsonValue Begin = JsonValue::object();
    Begin.set("event", "begin");
    Begin.set("id", "old-stuck");
    Begin.set("request", R.toJson());
    Out << Begin.str() << "\n";
  }

  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_EQ(Scan.LegacyRecords, 3u);
  EXPECT_EQ(Scan.Records, 0u);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  ASSERT_EQ(Scan.InFlight.size(), 1u);
  EXPECT_EQ(Scan.InFlight.front().Id, "old-stuck");

  // A new-format writer appends checksummed records to the same file
  // and both generations of record coexist in one scan.
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    ServiceRequest N = R;
    N.Id = "new-stuck";
    J.begin(N);
  }
  Scan = scanJournalDetailed(Path);
  EXPECT_EQ(Scan.LegacyRecords, 3u);
  EXPECT_EQ(Scan.Records, 1u);
  EXPECT_EQ(Scan.InFlight.size(), 2u);
  std::remove(Path.c_str());
}

TEST(JournalTest, TornTailAtEveryByteOffsetNeverMisattributes) {
  // kill -9 / power loss can cut the final append at any byte. For
  // every possible cut point the scan must classify the damage as a
  // torn tail (never mid-file corruption), keep every record before
  // the cut, and point GoodBytes at the last intact boundary.
  std::string Path = writeSmallJournal("jslice_journal_torn.jsonl");
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Whole;
  Whole << In.rdbuf();
  std::string Full = Whole.str();
  In.close();

  // Boundary offsets: after each complete record (line + newline).
  std::vector<size_t> Boundaries = {0};
  for (size_t I = 0; I != Full.size(); ++I)
    if (Full[I] == '\n')
      Boundaries.push_back(I + 1);
  ASSERT_EQ(Boundaries.size(), 4u); // Empty + three records.
  size_t LastBoundary = Boundaries[Boundaries.size() - 2];

  std::string Torn = ::testing::TempDir() + "jslice_journal_torn_cut.jsonl";
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    {
      std::ofstream Out(Torn, std::ios::binary | std::ios::trunc);
      Out.write(Full.data(), static_cast<std::streamsize>(Cut));
    }
    JournalScan Scan = scanJournalDetailed(Torn);
    EXPECT_EQ(Scan.CorruptRecords, 0u)
        << "cut at " << Cut << " misread a torn tail as corruption";
    // The last intact point at or before the cut: a record boundary, or
    // the cut itself when it landed exactly at a record's final content
    // byte (all the bytes verified; only the newline is missing).
    size_t Expect = 0;
    for (size_t B : Boundaries) {
      if (B <= Cut)
        Expect = B;
      if (B == Cut + 1 && Cut > 0)
        Expect = Cut; // Complete record, missing only its '\n'.
    }
    EXPECT_EQ(Scan.GoodBytes, Expect) << "cut at " << Cut;
    bool Intact = Scan.GoodBytes == Cut;
    EXPECT_EQ(Scan.TornTail, !Intact) << "cut at " << Cut;
    EXPECT_FALSE(journalEndsWithCleanShutdown(Torn)) << "cut at " << Cut;
    // In-flight attribution never invents or loses a begin: a record
    // counts exactly when every content byte survived the cut.
    bool StuckIntact = Cut + 1 >= Full.size();
    bool DonePairIntact = Cut + 1 >= LastBoundary;
    size_t WantInFlight = StuckIntact ? 1u : (DonePairIntact ? 0u : 1u);
    if (Cut + 1 < Boundaries[1])
      WantInFlight = 0; // Nothing intact at all.
    EXPECT_EQ(Scan.InFlight.size(), WantInFlight) << "cut at " << Cut;

    // Opening the torn file repairs it — truncating a partial tail,
    // or completing the framing of a newline-less final record — and
    // the survivor appends cleanly from there.
    bool MissingNewline =
        Cut > 0 && std::find(Boundaries.begin(), Boundaries.end(), Cut + 1) !=
                       Boundaries.end();
    size_t WantBytes = MissingNewline ? Cut + 1 : Expect;
    {
      Journal J;
      ASSERT_TRUE(J.open(Torn)) << "cut at " << Cut;
      EXPECT_EQ(J.counters().TornTails, Intact ? 0u : 1u)
          << "cut at " << Cut;
      EXPECT_EQ(J.bytes(), WantBytes) << "cut at " << Cut;
      ServiceRequest R;
      R.Id = "after";
      R.Program = TinyProgram;
      R.Line = 2;
      EXPECT_TRUE(J.begin(R));
    }
    JournalScan Healed = scanJournalDetailed(Torn);
    EXPECT_EQ(Healed.CorruptRecords, 0u) << "cut at " << Cut;
    EXPECT_FALSE(Healed.TornTail) << "cut at " << Cut;
    EXPECT_EQ(Healed.InFlight.size(), WantInFlight + 1) << "cut at " << Cut;
  }
  std::remove(Torn.c_str());
  std::remove(Path.c_str());
}

TEST(JournalTest, MidFileCorruptionQuarantinesAndSalvages) {
  // Damage in the middle of the file — intact records after it — is
  // not a torn tail: something rewrote history. open() must set the
  // damaged file aside as <path>.corrupt and salvage what verifies.
  std::string Path = writeSmallJournal("jslice_journal_midfile.jsonl");
  std::string Corrupt = Path + ".corrupt";
  std::remove(Corrupt.c_str());
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(20);
    F.put('#'); // Smash a byte inside the first record.
  }

  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_GE(Scan.CorruptRecords, 1u);
  EXPECT_FALSE(Scan.TornTail) << "mid-file damage is not a torn tail";
  ASSERT_EQ(Scan.InFlight.size(), 1u) << "records after the damage count";
  EXPECT_EQ(Scan.InFlight.front().Id, "stuck");

  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    EXPECT_GE(J.counters().CorruptRecords, 1u);
    EXPECT_GE(J.counters().SalvagedRecords, 2u);
    EXPECT_FALSE(J.failed());
  }
  // The damaged original is preserved for forensics...
  std::ifstream Aside(Corrupt);
  EXPECT_TRUE(Aside.good()) << "damaged journal was not quarantined aside";
  // ...and the rebuilt journal is fully verifiable with the salvage
  // intact.
  JournalScan Healed = scanJournalDetailed(Path);
  EXPECT_EQ(Healed.CorruptRecords, 0u);
  ASSERT_EQ(Healed.InFlight.size(), 1u);
  EXPECT_EQ(Healed.InFlight.front().Id, "stuck");
  EXPECT_EQ(Healed.InFlight.front().Request.Program, TinyProgram);
  std::remove(Path.c_str());
  std::remove(Corrupt.c_str());
}

TEST(JournalTest, FailedFsyncReopensOnceAndRetries) {
  // The fsyncgate rule: after a failed fsync the same handle's dirty
  // pages may be gone, so the retry must go through a fresh handle.
  std::string Path = ::testing::TempDir() + "jslice_journal_fsyncgate.jsonl";
  std::remove(Path.c_str());
  FaultyJournalIo Io;
  Journal J;
  J.setIo(&Io);
  ASSERT_TRUE(J.open(Path));
  ServiceRequest R;
  R.Id = "r1";
  R.Program = TinyProgram;
  R.Line = 2;
  Io.arm(JournalFault::FsyncFail, 1);
  EXPECT_TRUE(J.begin(R)) << "one fault must be absorbed by the retry";
  EXPECT_TRUE(Io.injected());
  JournalCounters C = J.counters();
  EXPECT_EQ(C.AppendFailures, 1u);
  EXPECT_EQ(C.Reopens, 1u);
  EXPECT_FALSE(J.failed());

  // The record that survived via the retry is durable and verifiable.
  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  ASSERT_EQ(Scan.InFlight.size(), 1u);
  EXPECT_EQ(Scan.InFlight.front().Id, "r1");

  // A disk that stays broken latches the failure instead of lying.
  Io.armEvery(JournalFault::FsyncFail, 1);
  EXPECT_FALSE(J.end("r1", "ok"));
  EXPECT_TRUE(J.failed());
  EXPECT_TRUE(J.counters().Failed);
  EXPECT_FALSE(J.begin(R)) << "a failed journal must not claim durability";

  // Whatever the broken disk kept, the framing never corrupts: false
  // from append means "durability unproven", not "garbage written".
  EXPECT_EQ(scanJournalDetailed(Path).CorruptRecords, 0u);
  std::remove(Path.c_str());
}

TEST(JournalTest, ShortWriteIsRepairedByTheRetry) {
  std::string Path = ::testing::TempDir() + "jslice_journal_short.jsonl";
  std::remove(Path.c_str());
  FaultyJournalIo Io;
  Journal J;
  J.setIo(&Io);
  ASSERT_TRUE(J.open(Path));
  ServiceRequest R;
  R.Id = "r1";
  R.Program = TinyProgram;
  R.Line = 2;
  J.begin(R);
  // The next write lands only half its bytes; the reopen truncates the
  // torn prefix back to the last good boundary before retrying.
  // (arm() counts from the arming point, so ordinal 1 is this append.)
  Io.arm(JournalFault::ShortWrite, 1);
  EXPECT_TRUE(J.end("r1", "ok"));
  EXPECT_TRUE(Io.injected());
  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_FALSE(Scan.TornTail) << "the torn prefix must not reach the disk";
  EXPECT_TRUE(Scan.InFlight.empty());
  std::remove(Path.c_str());
}

TEST(JournalTest, RotationCrashEitherSideOfRenameLosesNothing) {
  ServiceRequest Stuck;
  Stuck.Id = "stuck";
  Stuck.Program = TinyProgram;
  Stuck.Line = 2;
  for (JournalFault Crash : {JournalFault::CrashBeforeRename,
                             JournalFault::CrashAfterRename}) {
    std::string Path = ::testing::TempDir() + "jslice_journal_rotcrash.jsonl";
    std::remove(Path.c_str());
    std::remove((Path + ".rotate").c_str());
    FaultyJournalIo Io;
    {
      Journal J;
      J.setIo(&Io);
      ASSERT_TRUE(J.open(Path, /*RotateBytes=*/512));
      J.begin(Stuck);
      Io.arm(Crash, 1);
      // Bracketed pairs until the rotation attempt hits the crash.
      for (unsigned I = 0; I != 50 && !Io.injected(); ++I) {
        ServiceRequest R = Stuck;
        R.Id = "r" + std::to_string(I);
        J.begin(R);
        J.end(R.Id, "ok");
      }
      ASSERT_TRUE(Io.injected()) << journalFaultName(Crash);
    }
    // Whichever side of the rename the crash landed on, the next boot
    // must see the stuck begin (plus at most the one pair that was
    // mid-flight when the disk froze) and clean up the temp.
    std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
    ASSERT_GE(Poisoned.size(), 1u) << journalFaultName(Crash);
    ASSERT_LE(Poisoned.size(), 2u) << journalFaultName(Crash);
    bool FoundStuck = false;
    for (const PoisonedRequest &P : Poisoned)
      if (P.Id == "stuck") {
        FoundStuck = true;
        EXPECT_EQ(P.Request.Program, TinyProgram);
      }
    EXPECT_TRUE(FoundStuck) << journalFaultName(Crash);
    {
      Journal J;
      ASSERT_TRUE(J.open(Path));
    }
    std::error_code Ec;
    EXPECT_FALSE(std::filesystem::exists(Path + ".rotate", Ec))
        << journalFaultName(Crash) << ": stale rotation temp survived open()";
    std::remove(Path.c_str());
  }
}

TEST(JournalTest, QuarantineFailureReturnsEmptyPath) {
  // quarantinePoisoned must report failure ("") instead of pretending:
  // the dir path collides with an existing regular file.
  std::string Blocker = ::testing::TempDir() + "jslice_quarantine_blocked";
  std::remove(Blocker.c_str());
  {
    std::ofstream Out(Blocker);
    Out << "not a directory\n";
  }
  PoisonedRequest P;
  P.Id = "victim";
  P.Request.Id = "victim";
  P.Request.Program = TinyProgram;
  P.Request.Line = 2;
  EXPECT_EQ(quarantinePoisoned(Blocker, P), "");
  std::remove(Blocker.c_str());
}

//===----------------------------------------------------------------------===//
// Server end to end (in-memory streams)
//===----------------------------------------------------------------------===//

/// Serves \p Input on a fresh single-threaded server; returns response
/// lines in order.
std::vector<std::string> serveLines(const std::string &Input,
                                    ServerOptions Opts = ServerOptions()) {
  std::istringstream In(Input);
  std::ostringstream Out;
  std::ostringstream Log;
  Opts.Threads = 1;
  Server S(Opts, Out, Log);
  S.recover();
  S.serve(In);
  std::vector<std::string> Lines;
  std::istringstream Text(Out.str());
  std::string Line;
  while (std::getline(Text, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

JsonValue parsed(const std::string &Line) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  EXPECT_TRUE(V.has_value()) << Line;
  return V ? *V : JsonValue();
}

TEST(ServerTest, ServesASliceRequest) {
  std::vector<std::string> Lines = serveLines(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}\n");
  ASSERT_EQ(Lines.size(), 1u);
  JsonValue R = parsed(Lines[0]);
  EXPECT_EQ(R.find("id")->asString(), "r1");
  EXPECT_EQ(R.find("status")->asString(), "ok");
  EXPECT_EQ(R.find("served_tier")->asString(), "agrawal-fig7");
  EXPECT_FALSE(R.find("degraded")->asBool());
  EXPECT_EQ(R.find("lines")->elements().size(), 2u);
}

TEST(ServerTest, StarvedRequestRefusesAfterTheWholeLadder) {
  std::vector<std::string> Lines = serveLines(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"max_steps\":3}\n");
  ASSERT_EQ(Lines.size(), 1u);
  JsonValue R = parsed(Lines[0]);
  EXPECT_EQ(R.find("status")->asString(), "resource-exhausted");
  ASSERT_TRUE(R.find("attempts"));
  EXPECT_EQ(R.find("attempts")->elements().size(), 3u);
}

TEST(ServerTest, AnswersGarbageAndControlLines) {
  std::vector<std::string> Lines =
      serveLines("{oops\n"
                 "{\"cancel\": \"nobody\"}\n"
                 "{\"stats\": true}\n");
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(parsed(Lines[0]).find("status")->asString(), "bad-request");
  JsonValue Cancel = parsed(Lines[1]);
  EXPECT_EQ(Cancel.find("cancel")->asString(), "nobody");
  EXPECT_FALSE(Cancel.find("signalled")->asBool());
  JsonValue Stats = parsed(Lines[2]);
  ASSERT_TRUE(Stats.find("stats"));
  EXPECT_EQ(Stats.find("stats")->find("received")->asInt(), 3);
  EXPECT_EQ(Stats.find("stats")->find("bad_requests")->asInt(), 1);
}

TEST(ServerTest, RecoveryQuarantinesAndRefusesResubmission) {
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_recovery.jsonl";
  std::string QuarantineDir = Tmp + "jslice_server_recovery_q";
  std::remove(JournalPath.c_str());

  ServiceRequest Stuck;
  Stuck.Id = "stuck";
  Stuck.Program = TinyProgram;
  Stuck.Line = 2;
  Stuck.Vars = {"a"};
  {
    // A server that died mid-request: begin record, no end.
    Journal J;
    ASSERT_TRUE(J.open(JournalPath));
    J.begin(Stuck);
  }

  ServerOptions Opts;
  Opts.JournalPath = JournalPath;
  Opts.QuarantineDir = QuarantineDir;

  // Resubmitting the same content (different id) must bounce as
  // poisoned, pointing at the reproducer; different content passes.
  ServiceRequest Resubmit = Stuck;
  Resubmit.Id = "fresh-id";
  ServiceRequest Other = Stuck;
  Other.Id = "other";
  Other.Line = 1;
  std::vector<std::string> Lines =
      serveLines(Resubmit.toJson().str() + "\n" + Other.toJson().str() + "\n",
                 Opts);
  ASSERT_EQ(Lines.size(), 2u);
  JsonValue First = parsed(Lines[0]);
  EXPECT_EQ(First.find("status")->asString(), "poisoned");
  ASSERT_TRUE(First.find("repro"));
  std::ifstream Repro(First.find("repro")->asString());
  ASSERT_TRUE(Repro.good());
  std::stringstream Buffer;
  Buffer << Repro.rdbuf();
  EXPECT_EQ(Buffer.str(), TinyProgram);
  EXPECT_EQ(parsed(Lines[1]).find("status")->asString(), "ok");

  // The recovery closed the journal pair: a restart sees nothing stuck.
  EXPECT_TRUE(scanJournal(JournalPath).empty());
  std::remove(JournalPath.c_str());
}

TEST(ServerTest, HealthJsonIsAStandaloneLivenessAnswer) {
  std::istringstream In("");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.Generation = 7;
  Server S(Opts, Out, Log);

  JsonValue H = S.healthJson();
  ASSERT_TRUE(H.find("status"));
  EXPECT_EQ(H.find("status")->asString(), "ok");
  ASSERT_TRUE(H.find("generation"));
  EXPECT_EQ(H.find("generation")->asInt(), 7);
  ASSERT_TRUE(H.find("draining"));
  EXPECT_FALSE(H.find("draining")->asBool());
  ASSERT_TRUE(H.find("breaker_open"));
  EXPECT_FALSE(H.find("breaker_open")->asBool());
  EXPECT_FALSE(H.find("degraded"));
  EXPECT_FALSE(H.find("transport")); // No transport probe registered.

  // A wedged transport makes the same answer degraded.
  S.setHealthProbe([] {
    JsonValue T = JsonValue::object();
    T.set("wedged", true);
    return T;
  });
  JsonValue Wedged = S.healthJson();
  ASSERT_TRUE(Wedged.find("degraded"));
  EXPECT_TRUE(Wedged.find("degraded")->asBool());
  ASSERT_TRUE(Wedged.find("transport"));
  S.finish();
}

TEST(ServerTest, QuarantineFailureKeepsThePoisonInTheJournal) {
  // Recovery finds an unmatched begin but cannot write the reproducer
  // (the quarantine dir path is an existing regular file). The poison
  // must not vanish: the failure is counted, the begin stays unmatched
  // so the next boot retries, and resubmission is still refused.
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_qfail.jsonl";
  std::string Blocker = Tmp + "jslice_server_qfail_blocked";
  std::remove(JournalPath.c_str());
  std::remove(Blocker.c_str());
  {
    std::ofstream Out(Blocker);
    Out << "not a directory\n";
  }
  ServiceRequest Stuck;
  Stuck.Id = "stuck";
  Stuck.Program = TinyProgram;
  Stuck.Line = 2;
  Stuck.Vars = {"a"};
  {
    Journal J;
    ASSERT_TRUE(J.open(JournalPath));
    J.begin(Stuck);
  }

  std::istringstream In("");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = JournalPath;
  Opts.QuarantineDir = Blocker;
  Server S(Opts, Out, Log);
  // recover() counts successful quarantines; this one failed.
  EXPECT_EQ(S.recover(), 0u);
  S.finish();
  EXPECT_EQ(S.stats().QuarantineFailures, 1u);

  // The begin survived recovery's compaction: a later boot (with a
  // writable quarantine dir) still sees it.
  std::vector<PoisonedRequest> Left = scanJournal(JournalPath);
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left.front().Id, "stuck");
  std::remove(JournalPath.c_str());
  std::remove(Blocker.c_str());
}

TEST(ServerTest, JournalFailureShedPolicyRefusesInsteadOfForgetting) {
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_jfail_shed.jsonl";
  std::remove(JournalPath.c_str());
  FaultyJournalIo Io;
  Io.armEvery(JournalFault::WriteEio, 1); // Dead on arrival.

  std::istringstream In(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}\n");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = JournalPath;
  Opts.JournalIoHook = &Io;
  Opts.JournalFailurePolicy = JournalFailure::Shed;
  Server S(Opts, Out, Log);
  S.recover();
  S.serve(In);
  S.finish();

  std::optional<JsonValue> R = JsonValue::parse(Out.str());
  ASSERT_TRUE(R.has_value()) << Out.str();
  EXPECT_EQ(R->find("status")->asString(), "shed");
  EXPECT_NE(R->find("error")->asString().find("journal"), std::string::npos);
  EXPECT_TRUE(S.journalLost());
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.ShedByCause["journal-failed"], 1u);
  EXPECT_TRUE(Stats.JournalLost);
  EXPECT_GE(Stats.JournalAppendFailures, 1u);
  std::remove(JournalPath.c_str());
}

TEST(ServerTest, JournalFailureDegradePolicyServesAndTellsHealth) {
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_jfail_degrade.jsonl";
  std::remove(JournalPath.c_str());
  FaultyJournalIo Io;
  Io.armEvery(JournalFault::WriteEio, 1);

  std::istringstream In(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}\n");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = JournalPath;
  Opts.JournalIoHook = &Io;
  Opts.JournalFailurePolicy = JournalFailure::Degrade;
  Server S(Opts, Out, Log);
  S.recover();
  S.serve(In);

  std::optional<JsonValue> R = JsonValue::parse(Out.str());
  ASSERT_TRUE(R.has_value()) << Out.str();
  EXPECT_EQ(R->find("status")->asString(), "ok")
      << "degrade mode keeps serving";
  EXPECT_TRUE(S.journalLost());
  JsonValue H = S.healthJson();
  ASSERT_TRUE(H.find("journal"));
  EXPECT_EQ(H.find("journal")->asString(), "lost");
  ASSERT_TRUE(H.find("degraded"));
  EXPECT_TRUE(H.find("degraded")->asBool())
      << "a lost journal must degrade health, never hide";
  S.finish();
  std::remove(JournalPath.c_str());
}

TEST(ServerTest, JournalFailureAbortPolicyTripsTheAbortFlag) {
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_jfail_abort.jsonl";
  std::remove(JournalPath.c_str());
  FaultyJournalIo Io;
  Io.armEvery(JournalFault::WriteEio, 1);

  // Several requests queued: abort must answer what it started and
  // stop the loop, not serve the whole stream journal-less.
  std::string Req =
      "{\"id\":\"r%\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}\n";
  std::string Input;
  for (int I = 0; I != 8; ++I) {
    std::string Line = Req;
    Line.replace(Line.find('%'), 1, std::to_string(I));
    Input += Line;
  }
  std::istringstream In(Input);
  std::ostringstream Out, Log;
  std::atomic<bool> Stop{false};
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = JournalPath;
  Opts.JournalIoHook = &Io;
  Opts.JournalFailurePolicy = JournalFailure::Abort;
  Opts.ShutdownFlag = &Stop;
  Opts.AbortFlag = &Stop;
  Server S(Opts, Out, Log);
  S.recover();
  S.serve(In);
  S.finish();

  EXPECT_TRUE(S.journalAborted());
  EXPECT_TRUE(Stop.load());
  // The loop stopped early: not every queued request was answered.
  std::istringstream Text(Out.str());
  std::string Line;
  unsigned Answered = 0;
  while (std::getline(Text, Line))
    if (!Line.empty())
      ++Answered;
  EXPECT_GE(Answered, 1u);
  EXPECT_LT(Answered, 8u) << "abort must stop accepting, not serve on";
  std::remove(JournalPath.c_str());
}

#ifdef JSLICE_HAVE_POSIX_PROCESS
TEST(ServerTest, CompleteHandoffQuarantinesOnlyEarlierGenerations) {
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_handoff.jsonl";
  std::string QuarantineDir = Tmp + "jslice_server_handoff_q";
  std::remove(JournalPath.c_str());

  // The journal mid-upgrade: the predecessor's in-flight begin (gen 1)
  // and this generation's own live begin (gen 2).
  ServiceRequest Old;
  Old.Id = "pred-stuck";
  Old.Program = TinyProgram;
  Old.Line = 2;
  Old.Vars = {"a"};
  ServiceRequest Mine = Old;
  Mine.Id = "own-live";
  Mine.Line = 1;
  {
    Journal J;
    ASSERT_TRUE(J.open(JournalPath));
    J.setGeneration(1);
    J.begin(Old);
    J.setGeneration(2);
    J.begin(Mine);
  }

  std::istringstream In("");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = JournalPath;
  Opts.QuarantineDir = QuarantineDir;
  Opts.Generation = 2;
  Opts.PredecessorPid = ::getpid(); // Alive: recovery must defer.
  Server S(Opts, Out, Log);
  EXPECT_EQ(S.recover(), 0u);
  EXPECT_TRUE(S.handoffPending());

  // Predecessor observed dead: exactly the gen-1 begin is quarantined;
  // generation 2's own in-flight set is left alone.
  EXPECT_EQ(S.completeHandoff(), 1u);
  EXPECT_FALSE(S.handoffPending());
  S.finish();

  std::vector<PoisonedRequest> Left = scanJournal(JournalPath);
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left.front().Id, "own-live");
  EXPECT_EQ(Left.front().Gen, 2u);
  std::remove(JournalPath.c_str());
}
#endif // JSLICE_HAVE_POSIX_PROCESS

TEST(ServerTest, DuplicateIdIsAnsweredExactlyTwice) {
  // Two requests reusing one id: the reader rejects the second as
  // bad-request while the first is still in flight, or serves it after
  // the first drained — in either interleaving both lines get answers
  // and at least one is ok. (The never-lose-a-response property is the
  // contract; the soak test exercises the race at volume.)
  ServiceRequest First;
  First.Id = "r1";
  First.Program = TinyProgram;
  First.Line = 2;
  ServiceRequest Dup = First;
  std::vector<std::string> Lines =
      serveLines(First.toJson().str() + "\n" + Dup.toJson().str() + "\n");
  ASSERT_EQ(Lines.size(), 2u);
  unsigned Ok = 0, Bad = 0;
  for (const std::string &L : Lines) {
    std::string Status = parsed(L).find("status")->asString();
    Ok += Status == "ok";
    Bad += Status == "bad-request";
  }
  EXPECT_EQ(Ok + Bad, 2u);
  EXPECT_GE(Ok, 1u);
}

TEST(ServerTest, CancelStopsAQueuedRequest) {
  // One worker; the first request occupies it while the second sits
  // queued; the cancel for the queued one lands before a worker ever
  // starts it. The reader thread processes cancels inline, so with the
  // slow first request this ordering is deterministic in practice; the
  // accepted outcomes are "cancelled" (won the race) or "ok" (request
  // finished first) — never a lost response.
  std::string Slow;
  for (int I = 0; I != 300; ++I)
    Slow += "b" + std::to_string(I) + " = " + std::to_string(I) + ";\n";
  Slow += "write(b0);\n";
  ServiceRequest R1;
  R1.Id = "r1";
  R1.Program = Slow;
  R1.Line = 301;
  ServiceRequest R2;
  R2.Id = "r2";
  R2.Program = TinyProgram;
  R2.Line = 2;
  std::vector<std::string> Lines =
      serveLines(R1.toJson().str() + "\n" + R2.toJson().str() + "\n" +
                 "{\"cancel\": \"r2\"}\n");
  ASSERT_EQ(Lines.size(), 3u);
  unsigned Answered = 0;
  bool SawR2 = false;
  for (const std::string &L : Lines) {
    JsonValue V = parsed(L);
    if (V.find("cancel"))
      continue;
    ++Answered;
    if (V.find("id")->asString() == "r2") {
      SawR2 = true;
      std::string Status = V.find("status")->asString();
      EXPECT_TRUE(Status == "cancelled" || Status == "ok") << Status;
    }
  }
  EXPECT_EQ(Answered, 2u);
  EXPECT_TRUE(SawR2);
}

/// A dependence chain long enough to hold the single worker busy for
/// hundreds of milliseconds while the reader races ahead.
std::string slowChain(unsigned N) {
  std::string P = "read(a0);\n";
  for (unsigned I = 1; I != N; ++I)
    P += "a" + std::to_string(I) + " = a" + std::to_string(I - 1) + " + 1;\n";
  P += "write(a" + std::to_string(N - 1) + ");\n";
  return P;
}

ServiceRequest slowChainRequest(const std::string &Id, unsigned N = 20000) {
  ServiceRequest R;
  R.Id = Id;
  R.Program = slowChain(N);
  R.Line = N + 1;
  R.Vars = {"a" + std::to_string(N - 1)};
  return R;
}

TEST(ServerOverloadTest, FullAdmissionQueueShedsDeterministically) {
  // One worker, queue bound of one: the slow request holds the only
  // slot while the reader admits-or-sheds the second instantly.
  ServiceRequest Slow = slowChainRequest("slow");
  ServiceRequest Tiny;
  Tiny.Id = "tiny";
  Tiny.Program = TinyProgram;
  Tiny.Line = 2;
  ServerOptions Opts;
  Opts.MaxQueueDepth = 1;
  std::vector<std::string> Lines =
      serveLines(Slow.toJson().str() + "\n" + Tiny.toJson().str() + "\n",
                 Opts);
  ASSERT_EQ(Lines.size(), 2u);
  bool SawShed = false;
  for (const std::string &L : Lines) {
    JsonValue V = parsed(L);
    if (V.find("id")->asString() != "tiny")
      continue;
    SawShed = true;
    EXPECT_EQ(V.find("status")->asString(), "shed");
    EXPECT_NE(V.find("error")->asString().find("admission queue full"),
              std::string::npos);
  }
  EXPECT_TRUE(SawShed);
}

TEST(ServerOverloadTest, QueueDeadlineShedsRequestsThatWaitedTooLong) {
  // The second request is admitted but sits queued behind the slow one
  // far past its deadline; the worker sheds it instead of running it.
  ServiceRequest Slow = slowChainRequest("slow");
  ServiceRequest Tiny;
  Tiny.Id = "tiny";
  Tiny.Program = TinyProgram;
  Tiny.Line = 2;
  ServerOptions Opts;
  Opts.QueueDeadlineMs = 100;
  std::vector<std::string> Lines =
      serveLines(Slow.toJson().str() + "\n" + Tiny.toJson().str() + "\n",
                 Opts);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &L : Lines) {
    JsonValue V = parsed(L);
    if (V.find("id")->asString() != "tiny")
      continue;
    EXPECT_EQ(V.find("status")->asString(), "shed");
    EXPECT_NE(V.find("error")->asString().find("queue deadline"),
              std::string::npos);
  }
}

TEST(ServerOverloadTest, MemoryWatermarkShedsWhileRssIsCritical) {
  // Any running process exceeds a 1 MiB watermark, so this is the
  // always-shedding configuration: deterministic refusals, no slicing.
  ServerOptions Opts;
  Opts.MaxRssMb = 1;
  std::vector<std::string> Lines = serveLines(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2}\n",
      Opts);
  ASSERT_EQ(Lines.size(), 1u);
  JsonValue V = parsed(Lines[0]);
  EXPECT_EQ(V.find("status")->asString(), "shed");
  EXPECT_NE(V.find("error")->asString().find("memory watermark"),
            std::string::npos);
}

TEST(ServerOverloadTest, DrainFlagStopsTheLoopAndShedsDirectLines) {
  std::atomic<bool> Shutdown{false};
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.ShutdownFlag = &Shutdown;
  std::ostringstream Out, Log;
  Server S(Opts, Out, Log);

  // Flag raised before the next line is consumed: serve() drains
  // without touching the pending request...
  Shutdown.store(true);
  std::istringstream In(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2}\n");
  S.serve(In);
  EXPECT_TRUE(S.drained());
  EXPECT_EQ(Out.str(), "");

  // ...and anything pushed at a draining server is shed, not queued.
  S.serveLine(
      "{\"id\":\"r2\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2}");
  JsonValue V = parsed(Out.str());
  EXPECT_EQ(V.find("id")->asString(), "r2");
  EXPECT_EQ(V.find("status")->asString(), "shed");
  EXPECT_NE(V.find("error")->asString().find("draining"), std::string::npos);
  S.finish();
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

TEST(ServerProcessModeTest, ServesThroughSandboxWorkers) {
  ServerOptions Opts;
  Opts.IsolateProcess = true;
  Opts.Super.Workers = 1;
  std::istringstream In(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}\n");
  std::ostringstream Out, Log;
  {
    Server S(Opts, Out, Log);
    S.serve(In);
    ASSERT_NE(S.supervisor(), nullptr);
    EXPECT_GE(S.supervisor()->stats().Spawns, 1u);
    S.finish();
  }
  std::istringstream Text(Out.str());
  std::string Line;
  ASSERT_TRUE(std::getline(Text, Line));
  JsonValue V = parsed(Line);
  EXPECT_EQ(V.find("id")->asString(), "r1");
  EXPECT_EQ(V.find("status")->asString(), "ok");
  EXPECT_EQ(V.find("served_tier")->asString(), "agrawal-fig7");
  ASSERT_TRUE(V.find("latency_ms"));
}

#endif // JSLICE_HAVE_POSIX_PROCESS

TEST(ServerStatsTest, HistogramAndLatenciesAccumulate) {
  std::istringstream In(
      "{\"id\":\"a\",\"program\":\"read(x);\\nwrite(x);\\n\",\"line\":2}\n"
      "{\"id\":\"b\",\"program\":\"read(x);\\nwrite(x);\\n\",\"line\":2,"
      "\"algorithm\":\"lyle\"}\n");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Server S(Opts, Out, Log);
  S.serve(In);
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.Received, 2u);
  EXPECT_EQ(Stats.Served, 2u);
  EXPECT_EQ(Stats.Refused, 0u);
  EXPECT_EQ(Stats.TierHistogram["agrawal-fig7"], 1u);
  EXPECT_EQ(Stats.TierHistogram["lyle"], 1u);
  EXPECT_GE(Stats.P95Ms, Stats.P50Ms);
}

//===----------------------------------------------------------------------===//
// Journal vintages: legacy, checksummed, and stamped records coexist
//===----------------------------------------------------------------------===//

TEST(JournalTest, MixedVintageScanCountsEveryGeneration) {
  // One file, three eras interleaved: pre-checksum legacy lines, plain
  // CRC records, and records stamped with an upgrade generation and a
  // replication epoch. The scan must classify each era, attribute
  // in-flight begins across all of them, and report the fencing
  // high-water mark — a warm standby's replica journal looks exactly
  // like this after surviving an upgrade and a failover.
  std::string Path = ::testing::TempDir() + "jslice_journal_vintages.jsonl";
  std::remove(Path.c_str());
  ServiceRequest R;
  R.Program = TinyProgram;
  R.Line = 2;
  {
    // Era 1: a legacy writer — no crc, no seq.
    std::ofstream Out(Path);
    JsonValue Begin = JsonValue::object();
    Begin.set("event", "begin");
    Begin.set("id", "legacy-done");
    ServiceRequest L = R;
    L.Id = "legacy-done";
    Begin.set("request", L.toJson());
    Out << Begin.str() << "\n";
    JsonValue End = JsonValue::object();
    End.set("event", "end");
    End.set("id", "legacy-done");
    End.set("status", "ok");
    Out << End.str() << "\n";
  }
  {
    // Era 2: a checksummed writer, unstamped.
    Journal J;
    ASSERT_TRUE(J.open(Path));
    R.Id = "crc-stuck";
    ASSERT_TRUE(J.begin(R));
  }
  {
    // Era 3: a post-upgrade, post-promotion writer stamping both a
    // generation and a fencing epoch.
    Journal J;
    ASSERT_TRUE(J.open(Path));
    J.setGeneration(2);
    J.setEpoch(3);
    R.Id = "stamped-done";
    ASSERT_TRUE(J.begin(R));
    ASSERT_TRUE(J.end("stamped-done", "ok"));
    R.Id = "stamped-stuck";
    ASSERT_TRUE(J.begin(R));
  }

  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_TRUE(Scan.Exists);
  EXPECT_EQ(Scan.LegacyRecords, 2u);
  EXPECT_EQ(Scan.Records, 4u);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_FALSE(Scan.TornTail);
  EXPECT_EQ(Scan.MaxEpoch, 3u);
  EXPECT_GE(Scan.MaxSeq, 4u);
  ASSERT_EQ(Scan.InFlight.size(), 2u);
  std::vector<std::string> Ids;
  for (const PoisonedRequest &P : Scan.InFlight)
    Ids.push_back(P.Id);
  EXPECT_NE(std::find(Ids.begin(), Ids.end(), "crc-stuck"), Ids.end());
  EXPECT_NE(std::find(Ids.begin(), Ids.end(), "stamped-stuck"), Ids.end());

  // A fourth writer appends past all three eras without repairs.
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    EXPECT_EQ(J.counters().CorruptRecords, 0u);
    EXPECT_EQ(J.maxEpochSeen(), 3u);
    R.Id = "after";
    EXPECT_TRUE(J.begin(R));
  }
  EXPECT_EQ(scanJournalDetailed(Path).InFlight.size(), 3u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Replication: hub shipping, ack policies, standby fencing
//===----------------------------------------------------------------------===//

/// Unwraps a {"repl":"rec","line":...} frame; "" when it is not one.
std::string frameLine(const std::string &Frame) {
  std::optional<JsonValue> V = JsonValue::parse(Frame);
  if (!V || !V->isObject())
    return "";
  const JsonValue *Kind = V->find("repl");
  if (!Kind || Kind->asString() != "rec")
    return "";
  const JsonValue *Line = V->find("line");
  return Line ? Line->asString() : "";
}

TEST(ReplicationHubTest, FlushPolicyShipsEveryAppendInOrder) {
  std::string Path = ::testing::TempDir() + "jslice_repl_primary.jsonl";
  std::string RPath = ::testing::TempDir() + "jslice_repl_replica.jsonl";
  std::remove(Path.c_str());
  std::remove(RPath.c_str());
  Journal J;
  ASSERT_TRUE(J.open(Path));
  J.setEpoch(2);
  ReplicationHub Hub(J, ReplAckPolicy::Flush);

  std::vector<std::string> Frames;
  Hub.subscribe(0, [&](const std::string &F) { Frames.push_back(F); });

  // The hello leads and names the primary's epoch; an empty journal is
  // a resume (nothing was compacted away), not a snapshot.
  ASSERT_GE(Frames.size(), 1u);
  JsonValue Hello = parsed(Frames[0]);
  EXPECT_EQ(Hello.find("repl")->asString(), "hello");
  EXPECT_EQ(Hello.find("epoch")->asInt(), 2);
  EXPECT_FALSE(Hello.find("snapshot")->asBool());
  ReplicationCounters C = Hub.counters();
  EXPECT_EQ(C.Subscribes, 1u);
  EXPECT_EQ(C.Resumes, 1u);
  EXPECT_EQ(C.Snapshots, 0u);

  // Flush policy: the frame is in the subscriber's hands before the
  // append returns — no thread to wait for.
  ServiceRequest R;
  R.Id = "r1";
  R.Program = TinyProgram;
  R.Line = 2;
  uint64_t Seq = 0;
  ASSERT_TRUE(J.begin(R, &Seq));
  ASSERT_TRUE(J.end("r1", "ok"));
  ASSERT_EQ(Frames.size(), 3u);

  // The shipped bytes are the exact journaled records: a replica
  // journal built from them verifies end to end and folds the pair
  // out of the in-flight index.
  Journal Replica;
  ASSERT_TRUE(Replica.open(RPath));
  for (size_t I = 1; I != Frames.size(); ++I) {
    std::string Line = frameLine(Frames[I]);
    ASSERT_FALSE(Line.empty()) << Frames[I];
    EXPECT_TRUE(Replica.appendReplica(Line));
  }
  EXPECT_EQ(Replica.lastSeq(), J.lastSeq());
  EXPECT_EQ(Replica.maxEpochSeen(), 2u);
  JournalScan Scan = scanJournalDetailed(RPath);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_TRUE(Scan.InFlight.empty());
  EXPECT_EQ(Scan.MaxEpoch, 2u);

  // The ack path: the standby's durable high-water mark wakes sync
  // waiters instantly.
  Hub.ack(Replica.lastSeq());
  EXPECT_EQ(Hub.ackedSeq(), Replica.lastSeq());
  EXPECT_TRUE(Hub.waitAcked(Seq, 1000));
  EXPECT_EQ(Hub.counters().SyncTimeouts, 0u);
  std::remove(Path.c_str());
  std::remove(RPath.c_str());
}

TEST(ReplicationHubTest, WaitAckedFailsFastWithNoSubscriber) {
  // A primary without a standby must not hang admissions for the
  // timeout: the loss window is open and counted, not hidden behind a
  // stall.
  std::string Path = ::testing::TempDir() + "jslice_repl_lonely.jsonl";
  std::remove(Path.c_str());
  Journal J;
  ASSERT_TRUE(J.open(Path));
  ReplicationHub Hub(J, ReplAckPolicy::Sync);
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(Hub.waitAcked(1, 5000));
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_LT(ElapsedMs, 1000) << "no-subscriber wait must not consume "
                                "the timeout";
  std::remove(Path.c_str());
}

TEST(ReplicationHubTest, CompactionGapForcesASnapshotCatchUp) {
  // A subscriber resuming from before the last compaction point would
  // miss `end` records the rewrite dropped; the hub must resend the
  // whole file and say so in the hello.
  std::string Path = ::testing::TempDir() + "jslice_repl_snapshot.jsonl";
  std::remove(Path.c_str());
  Journal J;
  // A tiny rotation threshold so bracketed pairs trigger compaction.
  ASSERT_TRUE(J.open(Path, /*RotateBytes=*/512));
  ServiceRequest R;
  R.Program = TinyProgram;
  R.Line = 2;
  for (unsigned I = 0; J.lastCompactSeq() == 0 && I != 64; ++I) {
    R.Id = "p" + std::to_string(I);
    ASSERT_TRUE(J.begin(R));
    ASSERT_TRUE(J.end(R.Id, "ok"));
  }
  ASSERT_GT(J.lastCompactSeq(), 0u) << "rotation never compacted";

  ReplicationHub Hub(J, ReplAckPolicy::Flush);
  std::vector<std::string> Frames;
  Hub.subscribe(1, [&](const std::string &F) { Frames.push_back(F); });
  ASSERT_GE(Frames.size(), 1u);
  EXPECT_TRUE(parsed(Frames[0]).find("snapshot")->asBool());
  ReplicationCounters C = Hub.counters();
  EXPECT_EQ(C.Snapshots, 1u);
  EXPECT_EQ(C.Resumes, 0u);
  std::remove(Path.c_str());
}

/// Thread-safe sink log: slice responses arrive from pool threads,
/// control responses synchronously — waitFor() serializes both.
class SinkLog {
public:
  void push(const std::string &L) {
    std::lock_guard<std::mutex> G(M);
    Lines.push_back(L);
  }
  /// The \p N-th line (1-based), waiting up to ~5s for it; "" on
  /// timeout.
  std::string waitFor(size_t N) {
    for (int Spin = 0; Spin != 5000; ++Spin) {
      {
        std::lock_guard<std::mutex> G(M);
        if (Lines.size() >= N)
          return Lines[N - 1];
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return "";
  }

private:
  std::mutex M;
  std::vector<std::string> Lines;
};

TEST(ServerTest, StandbyShedsUntilPromotedThenFencesStaleClients) {
  // One server walked through the failover life cycle in-memory:
  // standby (sheds), promoted (serves), then fencing a request whose
  // min_epoch outranks it (split-brain refusal).
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.Standby = true;
  std::ostringstream Out, Log;
  Server S(Opts, Out, Log);
  EXPECT_TRUE(S.standby());

  std::string Slice =
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}";
  SinkLog Got;
  auto Sink = [&](const std::string &L) { Got.push(L); };

  S.serveLine(Slice, Sink);
  std::string Shed = Got.waitFor(1);
  EXPECT_EQ(parsed(Shed).find("status")->asString(), "shed");
  EXPECT_NE(Shed.find("standby"), std::string::npos);

  S.serveLine("{\"promote\": true}", Sink);
  JsonValue P = parsed(Got.waitFor(2));
  EXPECT_EQ(P.find("status")->asString(), "ok");
  EXPECT_TRUE(P.find("promoted")->asBool());
  EXPECT_GE(P.find("epoch")->asInt(), 1);
  EXPECT_FALSE(S.standby());
  uint64_t Epoch = S.epoch();

  S.serveLine(Slice, Sink);
  EXPECT_EQ(parsed(Got.waitFor(3)).find("status")->asString(), "ok");

  // A promote on a live primary is an idempotent no-op at the same
  // epoch — it must NOT fence anyone.
  S.serveLine("{\"promote\": true}", Sink);
  EXPECT_FALSE(parsed(Got.waitFor(4)).find("promoted")->asBool());
  EXPECT_EQ(S.epoch(), Epoch);

  // A client that failed over to a higher-epoch successor carries that
  // epoch back here as min_epoch; this stale server must refuse.
  std::string Fenced =
      "{\"id\":\"r2\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"],\"min_epoch\":" +
      std::to_string(Epoch + 1) + "}";
  S.serveLine(Fenced, Sink);
  std::string Refused = Got.waitFor(5);
  EXPECT_EQ(parsed(Refused).find("status")->asString(), "shed");
  EXPECT_NE(Refused.find("fenced"), std::string::npos);

  // An equal-or-lower min_epoch passes.
  std::string Current =
      "{\"id\":\"r3\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"],\"min_epoch\":" +
      std::to_string(Epoch) + "}";
  S.serveLine(Current, Sink);
  EXPECT_EQ(parsed(Got.waitFor(6)).find("status")->asString(), "ok");
  S.finish();
}

TEST(ServerTest, DegradedJournalReattachesWhenTheDiskHeals) {
  // --journal-failure=degrade with a reattach interval: the server
  // serves through a dead disk with {"health"} saying journal:lost,
  // then quietly resumes journaling once a probe lands.
  std::string Path = ::testing::TempDir() + "jslice_journal_heal.jsonl";
  std::remove(Path.c_str());
  FaultyJournalIo Io;
  ServerOptions Opts;
  Opts.Threads = 1;
  Opts.JournalPath = Path;
  Opts.JournalFailurePolicy = JournalFailure::Degrade;
  Opts.JournalReattachIntervalMs = 1;
  Opts.JournalIoHook = &Io;
  std::ostringstream Out, Log;
  Server S(Opts, Out, Log);
  S.recover();

  SinkLog Got;
  auto Sink = [&](const std::string &L) { Got.push(L); };
  std::string Slice =
      "{\"id\":\"h1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}";

  // Kill the disk persistently; degrade serves on and latches "lost".
  Io.armEvery(JournalFault::FsyncFail, 1);
  S.serveLine(Slice, Sink);
  EXPECT_EQ(parsed(Got.waitFor(1)).find("status")->asString(), "ok");
  S.serveLine("{\"health\": true}", Sink);
  EXPECT_EQ(parsed(Got.waitFor(2)).find("journal")->asString(), "lost");

  // Heal the disk; the next admission past the probe interval runs
  // tryReattach and journaling resumes.
  Io.disarm();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::string Slice2 =
      "{\"id\":\"h2\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}";
  S.serveLine(Slice2, Sink);
  EXPECT_EQ(parsed(Got.waitFor(3)).find("status")->asString(), "ok");
  S.serveLine("{\"health\": true}", Sink);
  EXPECT_EQ(parsed(Got.waitFor(4)).find("journal")->asString(), "ok");

  // The healed journal carries the reattach probe and h2's records,
  // all verifiable.
  S.finish();
  JournalScan Scan = scanJournalDetailed(Path);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_GE(Scan.Records, 2u);
  std::remove(Path.c_str());
}

} // namespace
