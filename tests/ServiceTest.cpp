//===- tests/ServiceTest.cpp - Slicing-service unit tests ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The service layer, bottom up: the JSON codec, the wire protocol,
/// the write-ahead journal with its poison recovery, and the Server's
/// end-to-end request handling (serve, refuse, cancel, quarantine,
/// stats) over in-memory streams.
///
//===----------------------------------------------------------------------===//

#include "service/Journal.h"
#include "service/Server.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace jslice;

namespace {

const char *TinyProgram = "read(a);\nwrite(a);\n";

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(JsonTest, SerializesSortedCompactObjects) {
  JsonValue V = JsonValue::object();
  V.set("b", 2);
  V.set("a", std::string("x"));
  V.set("c", true);
  EXPECT_EQ(V.str(), "{\"a\":\"x\",\"b\":2,\"c\":true}");
}

TEST(JsonTest, RoundTripsStringsWithEscapes) {
  JsonValue V = JsonValue::object();
  V.set("s", std::string("line1\nline2\t\"quoted\"\\x\x01"));
  std::optional<JsonValue> Back = JsonValue::parse(V.str());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->find("s")->asString(), "line1\nline2\t\"quoted\"\\x\x01");
}

TEST(JsonTest, ParsesNestedStructures) {
  std::optional<JsonValue> V = JsonValue::parse(
      "{\"a\": [1, 2.5, null, {\"b\": false}], \"c\": \"\\u0041\"}");
  ASSERT_TRUE(V.has_value());
  ASSERT_TRUE(V->find("a")->isArray());
  EXPECT_EQ(V->find("a")->elements().size(), 4u);
  EXPECT_EQ(V->find("c")->asString(), "A");
}

TEST(JsonTest, RejectsGarbageWithAReason) {
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("{broken", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("").has_value());
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string Deep(200, '[');
  EXPECT_FALSE(JsonValue::parse(Deep).has_value());
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(RequestTest, ParsesSliceRequestWithAllFields) {
  ParsedRequest P = parseRequestLine(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"],\"algorithm\":\"lyle\",\"budget_ms\":250,"
      "\"max_steps\":1000}");
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Request.Kind, RequestKind::Slice);
  EXPECT_EQ(P.Request.Id, "r1");
  EXPECT_EQ(P.Request.Line, 2u);
  EXPECT_EQ(P.Request.Vars, std::vector<std::string>{"a"});
  EXPECT_EQ(P.Request.Algorithm, SliceAlgorithm::Lyle);
  EXPECT_EQ(P.Request.BudgetMs, 250u);
  EXPECT_EQ(P.Request.MaxSteps, 1000u);
}

TEST(RequestTest, ParsesControlRequests) {
  ParsedRequest Cancel = parseRequestLine("{\"cancel\": \"r9\"}");
  ASSERT_TRUE(Cancel.Ok);
  EXPECT_EQ(Cancel.Request.Kind, RequestKind::Cancel);
  EXPECT_EQ(Cancel.Request.CancelTarget, "r9");

  ParsedRequest Stats = parseRequestLine("{\"stats\": true}");
  ASSERT_TRUE(Stats.Ok);
  EXPECT_EQ(Stats.Request.Kind, RequestKind::Stats);
}

TEST(RequestTest, RejectsMalformedRequestsWithReasons) {
  EXPECT_FALSE(parseRequestLine("not json").Ok);
  EXPECT_FALSE(parseRequestLine("[1,2]").Ok);
  EXPECT_FALSE(parseRequestLine("{\"program\":\"x\",\"line\":1}").Ok);
  EXPECT_FALSE(
      parseRequestLine("{\"id\":\"r\",\"program\":\"x\",\"line\":0}").Ok);
  EXPECT_FALSE(parseRequestLine("{\"id\":\"r\",\"program\":\"x\",\"line\":1,"
                                "\"algorithm\":\"nonsense\"}")
                   .Ok);
  // The best-effort id still comes back for the error response.
  ParsedRequest P =
      parseRequestLine("{\"id\":\"r7\",\"program\":\"x\",\"line\":-4}");
  EXPECT_FALSE(P.Ok);
  EXPECT_EQ(P.Id, "r7");
}

TEST(RequestTest, ContentKeyTracksContentNotId) {
  ServiceRequest A;
  A.Id = "first";
  A.Program = TinyProgram;
  A.Line = 2;
  A.Vars = {"a"};
  ServiceRequest B = A;
  B.Id = "second";
  EXPECT_EQ(A.contentKey(), B.contentKey());
  B.Line = 1;
  EXPECT_NE(A.contentKey(), B.contentKey());
}

TEST(RequestTest, JournalRoundTripPreservesTheRequest) {
  ServiceRequest R;
  R.Id = "r1";
  R.Program = TinyProgram;
  R.Line = 2;
  R.Vars = {"a"};
  R.Algorithm = SliceAlgorithm::BallHorwitz;
  R.MaxSteps = 77;
  std::optional<JsonValue> V = JsonValue::parse(R.toJson().str());
  ASSERT_TRUE(V.has_value());
  ServiceRequest Back;
  ASSERT_TRUE(requestFromJson(*V, Back));
  EXPECT_EQ(Back.Program, R.Program);
  EXPECT_EQ(Back.Line, R.Line);
  EXPECT_EQ(Back.Vars, R.Vars);
  EXPECT_EQ(Back.Algorithm, R.Algorithm);
  EXPECT_EQ(Back.MaxSteps, R.MaxSteps);
  EXPECT_EQ(Back.contentKey(), R.contentKey());
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(JournalTest, UnmatchedBeginSurvivesScanning) {
  std::string Path = ::testing::TempDir() + "jslice_journal_test.jsonl";
  {
    Journal J;
    ASSERT_TRUE(J.open(Path));
    ServiceRequest Done;
    Done.Id = "done";
    Done.Program = TinyProgram;
    Done.Line = 2;
    J.begin(Done);
    J.end("done", "ok");
    ServiceRequest Stuck = Done;
    Stuck.Id = "stuck";
    J.begin(Stuck);
  }
  // A torn tail record (the crash cut the write short) must be skipped.
  {
    std::ofstream Out(Path, std::ios::app);
    Out << "{\"event\":\"begin\",\"id\":\"to";
  }
  std::vector<PoisonedRequest> Poisoned = scanJournal(Path);
  ASSERT_EQ(Poisoned.size(), 1u);
  EXPECT_EQ(Poisoned.front().Id, "stuck");
  EXPECT_EQ(Poisoned.front().Request.Program, TinyProgram);
  std::remove(Path.c_str());
}

TEST(JournalTest, MissingFileScansEmpty) {
  EXPECT_TRUE(scanJournal(::testing::TempDir() + "no_such_journal").empty());
}

TEST(JournalTest, QuarantineWritesReplayableRepro) {
  std::string Dir = ::testing::TempDir() + "jslice_quarantine_test";
  PoisonedRequest P;
  P.Id = "victim";
  P.Request.Id = "victim";
  P.Request.Program = TinyProgram;
  P.Request.Line = 2;
  std::string Path = quarantinePoisoned(Dir, P);
  ASSERT_FALSE(Path.empty());
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), TinyProgram);
}

//===----------------------------------------------------------------------===//
// Server end to end (in-memory streams)
//===----------------------------------------------------------------------===//

/// Serves \p Input on a fresh single-threaded server; returns response
/// lines in order.
std::vector<std::string> serveLines(const std::string &Input,
                                    ServerOptions Opts = ServerOptions()) {
  std::istringstream In(Input);
  std::ostringstream Out;
  std::ostringstream Log;
  Opts.Threads = 1;
  Server S(Opts, Out, Log);
  S.recover();
  S.serve(In);
  std::vector<std::string> Lines;
  std::istringstream Text(Out.str());
  std::string Line;
  while (std::getline(Text, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

JsonValue parsed(const std::string &Line) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  EXPECT_TRUE(V.has_value()) << Line;
  return V ? *V : JsonValue();
}

TEST(ServerTest, ServesASliceRequest) {
  std::vector<std::string> Lines = serveLines(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"vars\":[\"a\"]}\n");
  ASSERT_EQ(Lines.size(), 1u);
  JsonValue R = parsed(Lines[0]);
  EXPECT_EQ(R.find("id")->asString(), "r1");
  EXPECT_EQ(R.find("status")->asString(), "ok");
  EXPECT_EQ(R.find("served_tier")->asString(), "agrawal-fig7");
  EXPECT_FALSE(R.find("degraded")->asBool());
  EXPECT_EQ(R.find("lines")->elements().size(), 2u);
}

TEST(ServerTest, StarvedRequestRefusesAfterTheWholeLadder) {
  std::vector<std::string> Lines = serveLines(
      "{\"id\":\"r1\",\"program\":\"read(a);\\nwrite(a);\\n\",\"line\":2,"
      "\"max_steps\":3}\n");
  ASSERT_EQ(Lines.size(), 1u);
  JsonValue R = parsed(Lines[0]);
  EXPECT_EQ(R.find("status")->asString(), "resource-exhausted");
  ASSERT_TRUE(R.find("attempts"));
  EXPECT_EQ(R.find("attempts")->elements().size(), 3u);
}

TEST(ServerTest, AnswersGarbageAndControlLines) {
  std::vector<std::string> Lines =
      serveLines("{oops\n"
                 "{\"cancel\": \"nobody\"}\n"
                 "{\"stats\": true}\n");
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(parsed(Lines[0]).find("status")->asString(), "bad-request");
  JsonValue Cancel = parsed(Lines[1]);
  EXPECT_EQ(Cancel.find("cancel")->asString(), "nobody");
  EXPECT_FALSE(Cancel.find("signalled")->asBool());
  JsonValue Stats = parsed(Lines[2]);
  ASSERT_TRUE(Stats.find("stats"));
  EXPECT_EQ(Stats.find("stats")->find("received")->asInt(), 3);
  EXPECT_EQ(Stats.find("stats")->find("bad_requests")->asInt(), 1);
}

TEST(ServerTest, RecoveryQuarantinesAndRefusesResubmission) {
  std::string Tmp = ::testing::TempDir();
  std::string JournalPath = Tmp + "jslice_server_recovery.jsonl";
  std::string QuarantineDir = Tmp + "jslice_server_recovery_q";
  std::remove(JournalPath.c_str());

  ServiceRequest Stuck;
  Stuck.Id = "stuck";
  Stuck.Program = TinyProgram;
  Stuck.Line = 2;
  Stuck.Vars = {"a"};
  {
    // A server that died mid-request: begin record, no end.
    Journal J;
    ASSERT_TRUE(J.open(JournalPath));
    J.begin(Stuck);
  }

  ServerOptions Opts;
  Opts.JournalPath = JournalPath;
  Opts.QuarantineDir = QuarantineDir;

  // Resubmitting the same content (different id) must bounce as
  // poisoned, pointing at the reproducer; different content passes.
  ServiceRequest Resubmit = Stuck;
  Resubmit.Id = "fresh-id";
  ServiceRequest Other = Stuck;
  Other.Id = "other";
  Other.Line = 1;
  std::vector<std::string> Lines =
      serveLines(Resubmit.toJson().str() + "\n" + Other.toJson().str() + "\n",
                 Opts);
  ASSERT_EQ(Lines.size(), 2u);
  JsonValue First = parsed(Lines[0]);
  EXPECT_EQ(First.find("status")->asString(), "poisoned");
  ASSERT_TRUE(First.find("repro"));
  std::ifstream Repro(First.find("repro")->asString());
  ASSERT_TRUE(Repro.good());
  std::stringstream Buffer;
  Buffer << Repro.rdbuf();
  EXPECT_EQ(Buffer.str(), TinyProgram);
  EXPECT_EQ(parsed(Lines[1]).find("status")->asString(), "ok");

  // The recovery closed the journal pair: a restart sees nothing stuck.
  EXPECT_TRUE(scanJournal(JournalPath).empty());
  std::remove(JournalPath.c_str());
}

TEST(ServerTest, DuplicateIdIsAnsweredExactlyTwice) {
  // Two requests reusing one id: the reader rejects the second as
  // bad-request while the first is still in flight, or serves it after
  // the first drained — in either interleaving both lines get answers
  // and at least one is ok. (The never-lose-a-response property is the
  // contract; the soak test exercises the race at volume.)
  ServiceRequest First;
  First.Id = "r1";
  First.Program = TinyProgram;
  First.Line = 2;
  ServiceRequest Dup = First;
  std::vector<std::string> Lines =
      serveLines(First.toJson().str() + "\n" + Dup.toJson().str() + "\n");
  ASSERT_EQ(Lines.size(), 2u);
  unsigned Ok = 0, Bad = 0;
  for (const std::string &L : Lines) {
    std::string Status = parsed(L).find("status")->asString();
    Ok += Status == "ok";
    Bad += Status == "bad-request";
  }
  EXPECT_EQ(Ok + Bad, 2u);
  EXPECT_GE(Ok, 1u);
}

TEST(ServerTest, CancelStopsAQueuedRequest) {
  // One worker; the first request occupies it while the second sits
  // queued; the cancel for the queued one lands before a worker ever
  // starts it. The reader thread processes cancels inline, so with the
  // slow first request this ordering is deterministic in practice; the
  // accepted outcomes are "cancelled" (won the race) or "ok" (request
  // finished first) — never a lost response.
  std::string Slow;
  for (int I = 0; I != 300; ++I)
    Slow += "b" + std::to_string(I) + " = " + std::to_string(I) + ";\n";
  Slow += "write(b0);\n";
  ServiceRequest R1;
  R1.Id = "r1";
  R1.Program = Slow;
  R1.Line = 301;
  ServiceRequest R2;
  R2.Id = "r2";
  R2.Program = TinyProgram;
  R2.Line = 2;
  std::vector<std::string> Lines =
      serveLines(R1.toJson().str() + "\n" + R2.toJson().str() + "\n" +
                 "{\"cancel\": \"r2\"}\n");
  ASSERT_EQ(Lines.size(), 3u);
  unsigned Answered = 0;
  bool SawR2 = false;
  for (const std::string &L : Lines) {
    JsonValue V = parsed(L);
    if (V.find("cancel"))
      continue;
    ++Answered;
    if (V.find("id")->asString() == "r2") {
      SawR2 = true;
      std::string Status = V.find("status")->asString();
      EXPECT_TRUE(Status == "cancelled" || Status == "ok") << Status;
    }
  }
  EXPECT_EQ(Answered, 2u);
  EXPECT_TRUE(SawR2);
}

TEST(ServerStatsTest, HistogramAndLatenciesAccumulate) {
  std::istringstream In(
      "{\"id\":\"a\",\"program\":\"read(x);\\nwrite(x);\\n\",\"line\":2}\n"
      "{\"id\":\"b\",\"program\":\"read(x);\\nwrite(x);\\n\",\"line\":2,"
      "\"algorithm\":\"lyle\"}\n");
  std::ostringstream Out, Log;
  ServerOptions Opts;
  Opts.Threads = 1;
  Server S(Opts, Out, Log);
  S.serve(In);
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.Received, 2u);
  EXPECT_EQ(Stats.Served, 2u);
  EXPECT_EQ(Stats.Refused, 0u);
  EXPECT_EQ(Stats.TierHistogram["agrawal-fig7"], 1u);
  EXPECT_EQ(Stats.TierHistogram["lyle"], 1u);
  EXPECT_GE(Stats.P95Ms, Stats.P50Ms);
}

} // namespace
