//===- tests/DataflowTest.cpp - Def/use and reaching-definitions tests --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

unsigned nodeOn(const Analysis &A, unsigned Line) {
  std::vector<unsigned> Nodes = A.cfg().nodesOnLine(Line);
  EXPECT_EQ(Nodes.size(), 1u) << "line " << Line;
  return Nodes.front();
}

std::set<unsigned> defLinesReaching(const Analysis &A, unsigned Line,
                                    const std::string &Var) {
  int VarId = A.defUse().varId(Var);
  EXPECT_GE(VarId, 0);
  std::set<unsigned> Lines;
  for (unsigned Node : A.reachingDefs().reachingDefNodes(
           nodeOn(A, Line), static_cast<unsigned>(VarId)))
    Lines.insert(A.cfg().node(Node).S->getLoc().Line);
  return Lines;
}

TEST(DefUseTest, AssignDefinesTargetUsesRhs) {
  Analysis A = analyzeOk("y = 2;\nx = y + z;\n");
  unsigned N = nodeOn(A, 2);
  ASSERT_EQ(A.defUse().defsOf(N).size(), 1u);
  EXPECT_EQ(A.defUse().varName(A.defUse().defsOf(N).front()), "x");
  std::vector<std::string> Uses;
  for (unsigned Var : A.defUse().usesOf(N))
    Uses.push_back(A.defUse().varName(Var));
  EXPECT_EQ(Uses, (std::vector<std::string>{"y", "z"}));
}

TEST(DefUseTest, ReadDefinesTargetAndInputStream) {
  Analysis A = analyzeOk("read(x);\nwrite(x);\n");
  unsigned Read = nodeOn(A, 1);
  std::set<std::string> Defined;
  for (unsigned Var : A.defUse().defsOf(Read))
    Defined.insert(A.defUse().varName(Var));
  EXPECT_EQ(Defined, (std::set<std::string>{"x", DefUse::InputVarName}))
      << "reads advance the input stream (see DefUse.h)";
  ASSERT_EQ(A.defUse().usesOf(Read).size(), 1u);
  EXPECT_EQ(A.defUse().varName(A.defUse().usesOf(Read).front()),
            DefUse::InputVarName);
}

TEST(DefUseTest, EofUsesTheInputStream) {
  Analysis A = analyzeOk("while (!eof())\nread(x);\nwrite(x);\n");
  unsigned Cond = nodeOn(A, 1);
  ASSERT_EQ(A.defUse().usesOf(Cond).size(), 1u);
  EXPECT_EQ(A.defUse().varName(A.defUse().usesOf(Cond).front()),
            DefUse::InputVarName);
}

TEST(DataDependenceTest, ReadsChainThroughTheInputStream) {
  Analysis A = analyzeOk("read(x);\nread(y);\nwrite(y);\n");
  unsigned R1 = nodeOn(A, 1), R2 = nodeOn(A, 2);
  EXPECT_TRUE(A.pdg().Data.hasEdge(R1, R2))
      << "slicing away read 1 would shift what read 2 observes";
}

TEST(DefUseTest, JumpsDefineAndUseNothing) {
  Analysis A = analyzeOk("while (x > 0) {\nbreak;\n}\nwrite(x);\n");
  unsigned Break = nodeOn(A, 2);
  EXPECT_TRUE(A.defUse().defsOf(Break).empty());
  EXPECT_TRUE(A.defUse().usesOf(Break).empty());
}

TEST(DefUseTest, PredicateUsesItsConditionVars) {
  Analysis A = analyzeOk("if (a < b)\nc = 1;\nwrite(c);\n");
  unsigned Cond = nodeOn(A, 1);
  EXPECT_TRUE(A.defUse().defsOf(Cond).empty());
  EXPECT_EQ(A.defUse().usesOf(Cond).size(), 2u);
}

TEST(DefUseTest, CallArgumentsAreUses) {
  Analysis A = analyzeOk("y = f1(a, b + c);\nwrite(y);\n");
  unsigned N = nodeOn(A, 1);
  EXPECT_EQ(A.defUse().usesOf(N).size(), 3u);
}

TEST(ReachingDefsTest, StraightLineKill) {
  Analysis A = analyzeOk("x = 1;\nx = 2;\nwrite(x);\n");
  EXPECT_EQ(defLinesReaching(A, 3, "x"), (std::set<unsigned>{2}))
      << "the second assignment kills the first";
}

TEST(ReachingDefsTest, BranchesMerge) {
  Analysis A = analyzeOk("if (c > 0)\nx = 1; else\nx = 2;\nwrite(x);\n");
  EXPECT_EQ(defLinesReaching(A, 4, "x"), (std::set<unsigned>{2, 3}));
}

TEST(ReachingDefsTest, LoopCarriedDefinitionReaches) {
  Analysis A = analyzeOk("x = 0;\nwhile (x < 5)\nx = x + 1;\nwrite(x);\n");
  EXPECT_EQ(defLinesReaching(A, 4, "x"), (std::set<unsigned>{1, 3}));
  // Inside the loop, both the init and the previous iteration reach.
  EXPECT_EQ(defLinesReaching(A, 3, "x"), (std::set<unsigned>{1, 3}));
}

TEST(ReachingDefsTest, UseWithoutAnyDefHasNoReachingDefs) {
  Analysis A = analyzeOk("write(ghost);\n");
  EXPECT_TRUE(defLinesReaching(A, 1, "ghost").empty());
}

TEST(ReachingDefsTest, JumpRoutesDefinitionsAroundKills) {
  // The goto skips the killing assignment on line 3.
  Analysis A = analyzeOk("x = 1;\nif (c > 0) goto L;\nx = 2;\n"
                         "L: write(x);\n");
  EXPECT_EQ(defLinesReaching(A, 4, "x"), (std::set<unsigned>{1, 3}));
}

TEST(ReachingDefsTest, PaperFigure2DataDependences) {
  // Figure 2-b: node 12 (write positives) is data dependent on the
  // definitions of positives on lines 2 and 7.
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  EXPECT_EQ(defLinesReaching(A, 12, "positives"), (std::set<unsigned>{2, 7}));
  // write(sum) on 11 sees all four sum definitions.
  EXPECT_EQ(defLinesReaching(A, 11, "sum"),
            (std::set<unsigned>{1, 6, 9, 10}));
}

TEST(DataDependenceTest, EdgesRunFromDefToUse) {
  Analysis A = analyzeOk("x = 1;\ny = x;\nwrite(y);\n");
  unsigned N1 = nodeOn(A, 1), N2 = nodeOn(A, 2), N3 = nodeOn(A, 3);
  EXPECT_TRUE(A.pdg().Data.hasEdge(N1, N2));
  EXPECT_TRUE(A.pdg().Data.hasEdge(N2, N3));
  EXPECT_FALSE(A.pdg().Data.hasEdge(N1, N3));
}

TEST(DataDependenceTest, SelfDependenceThroughLoop) {
  Analysis A = analyzeOk("x = 0;\nwhile (x < 9)\nx = x + 1;\nwrite(x);\n");
  unsigned Inc = nodeOn(A, 3);
  EXPECT_TRUE(A.pdg().Data.hasEdge(Inc, Inc))
      << "x = x + 1 in a loop depends on itself";
}

TEST(DataDependenceTest, NoEdgesForJumps) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node) {
    if (!A.cfg().node(Node).isJump())
      continue;
    EXPECT_TRUE(A.pdg().Data.succs(Node).empty())
        << "nothing may be data dependent on a jump (Section 3)";
    EXPECT_TRUE(A.pdg().Data.preds(Node).empty());
  }
}

} // namespace
