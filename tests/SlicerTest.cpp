//===- tests/SlicerTest.cpp - Criterion, printer, and slicer unit tests -------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

//===----------------------------------------------------------------------===//
// Criterion resolution
//===----------------------------------------------------------------------===//

TEST(CriterionTest, ResolvesLineAndSeedsReachingDefs) {
  Analysis A = analyzeOk("x = 1;\nx = 2;\ny = 5;\nwrite(x);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(4, {"x"}));
  EXPECT_EQ(RC.Node, A.cfg().nodesOnLine(4).front());
  // Seeds: the criterion node plus the one reaching definition (line 2;
  // line 1 is killed).
  std::set<unsigned> SeedLines;
  for (unsigned Seed : RC.Seeds)
    SeedLines.insert(A.cfg().node(Seed).S->getLoc().Line);
  EXPECT_EQ(SeedLines, (std::set<unsigned>{2, 4}));
}

TEST(CriterionTest, EmptyVarsDefaultToUsesAtLine) {
  Analysis A = analyzeOk("a = 1;\nb = 2;\nwrite(a + b);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(3, {}));
  EXPECT_EQ(RC.VarIds.size(), 2u);
}

TEST(CriterionTest, VariableNotUsedAtLineStillSliceable) {
  // Slicing on a variable not mentioned at the criterion line seeds
  // from its reaching definitions only.
  Analysis A = analyzeOk("z = 7;\nwrite(1);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(2, {"z"}));
  std::set<unsigned> SeedLines;
  for (unsigned Seed : RC.Seeds)
    SeedLines.insert(A.cfg().node(Seed).S->getLoc().Line);
  EXPECT_EQ(SeedLines, (std::set<unsigned>{1, 2}));
}

TEST(CriterionTest, ReportsMissingLine) {
  Analysis A = analyzeOk("write(1);\n");
  ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Criterion(99, {}));
  ASSERT_FALSE(RC.hasValue());
  EXPECT_NE(RC.diags().diags()[0].Message.find("no statement"),
            std::string::npos);
}

TEST(CriterionTest, ReportsUnknownVariable) {
  Analysis A = analyzeOk("write(1);\n");
  ErrorOr<ResolvedCriterion> RC =
      resolveCriterion(A, Criterion(1, {"phantom"}));
  ASSERT_FALSE(RC.hasValue());
  EXPECT_NE(RC.diags().diags()[0].Message.find("does not occur"),
            std::string::npos);
}

TEST(CriterionTest, LeftmostNodeWinsOnSharedLine) {
  // `if (eof()) goto L;` puts a predicate and a jump on one line; the
  // predicate starts the line and is the criterion statement.
  Analysis A = analyzeOk("if (eof()) goto L;\nwrite(1);\nL: write(2);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(1, {}));
  EXPECT_EQ(A.cfg().node(RC.Node).Kind, CfgNodeKind::Predicate);
}

//===----------------------------------------------------------------------===//
// Algorithm metadata and dispatch
//===----------------------------------------------------------------------===//

TEST(SlicerTest, AlgorithmNamesAreUnique) {
  std::set<std::string> Names;
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
        SliceAlgorithm::AgrawalLst, SliceAlgorithm::Structured,
        SliceAlgorithm::Conservative, SliceAlgorithm::BallHorwitz,
        SliceAlgorithm::Lyle, SliceAlgorithm::Gallagher,
        SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser})
    Names.insert(algorithmName(Algorithm));
  EXPECT_EQ(Names.size(), 10u);
}

TEST(SlicerTest, SoundnessFlagsMatchThePaper) {
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::Conventional));
  EXPECT_TRUE(algorithmIsSound(SliceAlgorithm::Agrawal));
  EXPECT_TRUE(algorithmIsSound(SliceAlgorithm::BallHorwitz));
  EXPECT_TRUE(algorithmIsSound(SliceAlgorithm::Lyle));
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::Gallagher));
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::JiangZhouRobson));
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::Weiser))
      << "Weiser never includes the jump statements (Section 5)";
}

TEST(SlicerTest, DispatchMatchesDirectCalls) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion RC =
      *resolveCriterion(A, paperExample("fig3a").Crit);
  EXPECT_EQ(computeSlice(A, RC, SliceAlgorithm::Agrawal).Nodes,
            sliceAgrawal(A, RC).Nodes);
  EXPECT_EQ(computeSlice(A, RC, SliceAlgorithm::Lyle).Nodes,
            sliceLyle(A, RC).Nodes);
}

TEST(SlicerTest, ConvenienceOverloadPropagatesErrors) {
  Analysis A = analyzeOk("write(1);\n");
  ErrorOr<SliceResult> R =
      computeSlice(A, Criterion(55, {}), SliceAlgorithm::Agrawal);
  EXPECT_FALSE(R.hasValue());
}

TEST(SlicerTest, EntryIsAlwaysInTheSlice) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
        SliceAlgorithm::BallHorwitz}) {
    SliceResult R =
        *computeSlice(A, paperExample("fig1a").Crit, Algorithm);
    EXPECT_TRUE(R.contains(A.cfg().entry()))
        << "the dummy predicate (paper's node 0) anchors every slice";
  }
}

TEST(SlicerTest, TraversalCountersOnlySetByFigure7) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion RC = *resolveCriterion(A, paperExample("fig3a").Crit);
  EXPECT_EQ(sliceConventional(A, RC).Traversals, 0u);
  SliceResult General = sliceAgrawal(A, RC);
  EXPECT_EQ(General.ProductiveTraversals, 1u);
  EXPECT_EQ(General.Traversals, 2u) << "one productive + one fixpoint check";
}

//===----------------------------------------------------------------------===//
// Slice printing (the paper's textual figures)
//===----------------------------------------------------------------------===//

TEST(SlicePrinterTest, PrintsFigure3cWithReassociatedLabel) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig3a").Crit,
                                SliceAlgorithm::Agrawal);
  std::string Text = printSlice(A, R);
  EXPECT_EQ(Text, "2: positives = 0;\n"
                  "3: L3: if (eof()) {\n"
                  "  3: goto L14;\n"
                  "}\n"
                  "4: read(x);\n"
                  "5: if (x > 0) {\n"
                  "  5: goto L8;\n"
                  "}\n"
                  "7: goto L13;\n"
                  "8: L8: positives = positives + 1;\n"
                  "13: L13: goto L3;\n"
                  "15: L14: write(positives);\n");
}

TEST(SlicePrinterTest, PrintsFigure5cContinueSlice) {
  Analysis A = analyzeOk(paperExample("fig5a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig5a").Crit,
                                SliceAlgorithm::Agrawal);
  std::string Text = printSlice(A, R);
  EXPECT_EQ(Text, "2: positives = 0;\n"
                  "3: while (!eof()) {\n"
                  "  4: read(x);\n"
                  "  5: if (x <= 0) {\n"
                  "    7: continue;\n"
                  "  }\n"
                  "  8: positives = positives + 1;\n"
                  "}\n"
                  "14: write(positives);\n");
}

TEST(SlicePrinterTest, LabelReassociatedToExitPrintsTrailing) {
  // The goto's label lands past every kept statement.
  Analysis A = analyzeOk("read(c);\nif (c > 0) goto L;\nwrite(c);\n"
                         "L: write(9);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(3, {"c"}));
  SliceResult R = sliceAgrawal(A, RC);
  ASSERT_TRUE(R.ReassociatedLabels.count("L"));
  EXPECT_EQ(R.ReassociatedLabels.at("L"), A.cfg().exit());
  std::string Text = printSlice(A, R);
  EXPECT_NE(Text.find("L: ;\n"), std::string::npos)
      << "a label re-associated past the program tail prints an empty "
         "statement (a bare `L:` would not re-parse):\n"
      << Text;
}

TEST(SlicePrinterTest, ReassociatedLabelIsNotPrintedTwice) {
  // The goto targets the do-while's *entry* node (the first body
  // statement), which leaves the slice while the do-while itself stays:
  // the label must move to the body's first kept statement and vanish
  // from the `do` line, or the projection defines L twice.
  Analysis A = analyzeOk("n = 5;\n"
                         "i = 0;\n"
                         "if (n > 0) goto L;\n"
                         "i = 9;\n"
                         "L: do {\n"
                         "write(0);\n"
                         "i = i + 1;\n"
                         "} while (i < n);\n"
                         "write(i);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(9, {"i"}));
  SliceResult R = sliceAgrawal(A, RC);
  ASSERT_TRUE(R.ReassociatedLabels.count("L"))
      << "label must move: the goto stays but write(0) leaves the slice";
  std::string Text = printSlice(A, R, SlicePrintOptions{false});
  size_t First = Text.find("L: ");
  ASSERT_NE(First, std::string::npos) << Text;
  EXPECT_EQ(Text.find("L: ", First + 1), std::string::npos)
      << "the label's original definition must be suppressed:\n"
      << Text;
  ErrorOr<Analysis> Reparsed = Analysis::fromSource(Text);
  EXPECT_TRUE(Reparsed.hasValue())
      << (Reparsed.hasValue() ? "" : Reparsed.diags().str()) << "\n"
      << Text;
}

TEST(SlicePrinterTest, FuzzCorpusSlicesRoundTripThroughTheParser) {
  // Satellite check: every printed slice of every fuzz-corpus program
  // must re-parse (orphaned or duplicated labels would not). Uses the
  // batch engine, so this also exercises it over the corpus.
  namespace fs = std::filesystem;
  unsigned Printed = 0;
  for (const auto &Entry :
       fs::directory_iterator(fs::path(JSLICE_REPO_ROOT) / "tests/fuzz")) {
    if (Entry.path().extension() != ".mc")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    ErrorOr<Analysis> A = Analysis::fromSource(Buffer.str());
    if (!A.hasValue())
      continue; // The corpus keeps some intentionally malformed inputs.
    BatchSlicer Batch(*A);
    for (SliceAlgorithm Algorithm :
         {SliceAlgorithm::Agrawal, SliceAlgorithm::AgrawalLst,
          SliceAlgorithm::BallHorwitz, SliceAlgorithm::Lyle}) {
      BatchOptions Opts;
      Opts.Algorithm = Algorithm;
      Opts.Threads = 1;
      for (const BatchEntry &E : Batch.runAll(allLineCriteria(*A), Opts)) {
        if (!E.Ok)
          continue;
        std::string Text = printSlice(*A, E.Result, SlicePrintOptions{false});
        ErrorOr<Analysis> Reparsed = Analysis::fromSource(Text);
        EXPECT_TRUE(Reparsed.hasValue())
            << Entry.path().string() << " / " << algorithmName(Algorithm)
            << " / line " << E.Crit.Line << ":\n"
            << (Reparsed.hasValue() ? "" : Reparsed.diags().str()) << "\n"
            << Text;
        ++Printed;
      }
    }
  }
  EXPECT_GT(Printed, 0u) << "corpus missing? run from the repo root";
}

TEST(SlicePrinterTest, SummaryShowsLineSetAndCount) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig1a").Crit,
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(summarizeSlice(A, R), "{2, 3, 4, 5, 7, 12} (6 lines)");
}

TEST(SlicePrinterTest, StmtIdsMatchLineSetGranularity) {
  Analysis A = analyzeOk(paperExample("fig14a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig14a").Crit,
                                SliceAlgorithm::Structured);
  // Four lines {1, 3, 4, 9} -> four statements.
  EXPECT_EQ(R.lineSet(A.cfg()).size(), 4u);
  EXPECT_EQ(R.stmtIds(A.cfg()).size(), 4u);
}

TEST(SlicePrinterTest, SwitchSliceKeepsOnlyContributingClauses) {
  Analysis A = analyzeOk(paperExample("fig14a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig14a").Crit,
                                SliceAlgorithm::Structured);
  std::string Text = printSlice(A, R);
  EXPECT_NE(Text.find("case 1:"), std::string::npos);
  EXPECT_NE(Text.find("case 2:"), std::string::npos);
  EXPECT_EQ(Text.find("case 3:"), std::string::npos)
      << "the empty clause disappears, as in Figure 14-b:\n"
      << Text;
}

//===----------------------------------------------------------------------===//
// Batch slicing engine (SCC condensation + closure cache)
//===----------------------------------------------------------------------===//

const std::vector<SliceAlgorithm> &allAlgorithms() {
  static const std::vector<SliceAlgorithm> All = {
      SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
      SliceAlgorithm::AgrawalLst,   SliceAlgorithm::Structured,
      SliceAlgorithm::Conservative, SliceAlgorithm::BallHorwitz,
      SliceAlgorithm::Lyle,         SliceAlgorithm::Gallagher,
      SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser};
  return All;
}

/// Full SliceResult equality, counters and traces included — "bit
/// identical" in the acceptance-criteria sense.
void expectSameResult(const SliceResult &Batch, const SliceResult &Single,
                      const std::string &What) {
  EXPECT_EQ(Batch.Nodes, Single.Nodes) << What;
  EXPECT_EQ(Batch.ReassociatedLabels, Single.ReassociatedLabels) << What;
  EXPECT_EQ(Batch.CriterionNode, Single.CriterionNode) << What;
  EXPECT_EQ(Batch.Traversals, Single.Traversals) << What;
  EXPECT_EQ(Batch.ProductiveTraversals, Single.ProductiveTraversals) << What;
  EXPECT_EQ(Batch.TraversalAdditions, Single.TraversalAdditions) << What;
}

TEST(DependenceClosureTest, StraightLineClosureIsPrefixOfDeps) {
  Analysis A = analyzeOk("x = 1;\ny = x;\nwrite(y);\n");
  DependenceClosure Cache(A.pdg(), A.cfg().numNodes());
  ASSERT_TRUE(Cache.valid());
  // write(y) transitively depends on both assignments (and Entry).
  unsigned WriteNode = A.cfg().nodesOnLine(3).front();
  const BitVector &C = Cache.closureOf(WriteNode);
  EXPECT_TRUE(C.test(WriteNode));
  EXPECT_TRUE(C.test(A.cfg().nodesOnLine(1).front()));
  EXPECT_TRUE(C.test(A.cfg().nodesOnLine(2).front()));
  // x = 1 depends on nothing but Entry: its closure is smaller.
  EXPECT_LT(Cache.closureOf(A.cfg().nodesOnLine(1).front()).count(),
            C.count());
}

TEST(DependenceClosureTest, LoopCollapsesIntoOneScc) {
  Analysis A = analyzeOk("i = 0;\nwhile (i < 3) {\ni = i + 1;\n}\nwrite(i);\n");
  DependenceClosure Cache(A.pdg(), A.cfg().numNodes());
  ASSERT_TRUE(Cache.valid());
  // The loop predicate and the increment depend on each other (data
  // dependence i -> i < 3 -> control -> i = i + 1 -> data -> i < 3):
  // one strongly connected component, one shared closure.
  unsigned Pred = A.cfg().nodesOnLine(2).front();
  unsigned Incr = A.cfg().nodesOnLine(3).front();
  EXPECT_EQ(Cache.sccOf(Pred), Cache.sccOf(Incr));
  EXPECT_EQ(&Cache.closureOf(Pred), &Cache.closureOf(Incr));
  EXPECT_LT(Cache.numSccs(), Cache.numNodes());
}

TEST(DependenceClosureTest, GuardExhaustionInvalidatesCache) {
  ErrorOr<Analysis> A = Analysis::fromSource(
      "i = 0;\nwhile (i < 3) {\ni = i + 1;\n}\nwrite(i);\n");
  ASSERT_TRUE(A.hasValue());
  ResourceGuard Tight((Budget{0, 0, /*MaxSteps=*/1, 0}));
  Tight.checkpoint("test.burn"); // Next checkpoint trips.
  DependenceClosure Cache(A->pdg(), A->cfg().numNodes(), &Tight);
  EXPECT_FALSE(Cache.valid());
  EXPECT_TRUE(Tight.exhausted());
}

TEST(BatchSlicerTest, MatchesSingleShotOnEveryPaperFigure) {
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeOk(Ex.Source);
    BatchSlicer Batch(A);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    for (SliceAlgorithm Algorithm : allAlgorithms())
      expectSameResult(Batch.slice(RC, Algorithm),
                       computeSlice(A, RC, Algorithm),
                       Ex.Name + " / " + algorithmName(Algorithm));
  }
}

TEST(BatchSlicerTest, RunAllCoversEveryLineAndMatchesSingleShot) {
  const PaperExample &Ex = paperExample("fig3a");
  Analysis A = analyzeOk(Ex.Source);
  BatchSlicer Batch(A);
  std::vector<Criterion> Crits = allLineCriteria(A);
  ASSERT_FALSE(Crits.empty());

  for (SliceAlgorithm Algorithm : allAlgorithms()) {
    BatchOptions Opts;
    Opts.Algorithm = Algorithm;
    Opts.Threads = 1;
    std::vector<BatchEntry> Entries = Batch.runAll(Crits, Opts);
    ASSERT_EQ(Entries.size(), Crits.size());
    for (size_t I = 0; I != Entries.size(); ++I) {
      ErrorOr<SliceResult> Single = computeSlice(A, Crits[I], Algorithm);
      ASSERT_EQ(Entries[I].Ok, Single.hasValue());
      if (Entries[I].Ok)
        expectSameResult(Entries[I].Result, *Single,
                         std::string(algorithmName(Algorithm)) + " line " +
                             std::to_string(Crits[I].Line));
    }
  }
}

TEST(BatchSlicerTest, ThreadedRunMatchesSerialRun) {
  const PaperExample &Ex = paperExample("fig8a");
  Analysis A = analyzeOk(Ex.Source);
  BatchSlicer Batch(A);
  std::vector<Criterion> Crits = allLineCriteria(A);

  BatchOptions Serial;
  Serial.Threads = 1;
  BatchOptions Threaded;
  Threaded.Threads = 4;
  std::vector<BatchEntry> S = Batch.runAll(Crits, Serial);
  std::vector<BatchEntry> T = Batch.runAll(Crits, Threaded);
  ASSERT_EQ(S.size(), T.size());
  for (size_t I = 0; I != S.size(); ++I) {
    ASSERT_EQ(S[I].Ok, T[I].Ok);
    if (S[I].Ok)
      expectSameResult(T[I].Result, S[I].Result,
                       "line " + std::to_string(Crits[I].Line));
  }
}

TEST(BatchSlicerTest, ExhaustedBudgetDegradesEntriesNotCrashes) {
  const PaperExample &Ex = paperExample("fig3a");
  Budget B;
  B.MaxSteps = 60; // Enough to build the Analysis, not to slice much.
  ErrorOr<Analysis> A = Analysis::fromSource(Ex.Source, B);
  if (!A.hasValue()) {
    EXPECT_TRUE(A.diags().hasKind(DiagKind::ResourceExhausted));
    return; // Budget tripped during analysis; nothing batchable.
  }
  BatchSlicer Batch(*A);
  std::vector<BatchEntry> Entries = Batch.runAll(allLineCriteria(*A));
  for (const BatchEntry &Entry : Entries)
    if (!Entry.Ok)
      EXPECT_TRUE(Entry.Diags.hasKind(DiagKind::ResourceExhausted))
          << Entry.Diags.str();
}

TEST(BatchSlicerTest, AllLineCriteriaAscendingAndOnStatementLines) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  std::vector<Criterion> Crits = allLineCriteria(A);
  for (size_t I = 1; I < Crits.size(); ++I)
    EXPECT_LT(Crits[I - 1].Line, Crits[I].Line);
  for (const Criterion &Crit : Crits) {
    EXPECT_TRUE(Crit.Vars.empty());
    EXPECT_FALSE(A.cfg().nodesOnLine(Crit.Line).empty());
  }
}

} // namespace
