//===- tests/SlicerTest.cpp - Criterion, printer, and slicer unit tests -------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

//===----------------------------------------------------------------------===//
// Criterion resolution
//===----------------------------------------------------------------------===//

TEST(CriterionTest, ResolvesLineAndSeedsReachingDefs) {
  Analysis A = analyzeOk("x = 1;\nx = 2;\ny = 5;\nwrite(x);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(4, {"x"}));
  EXPECT_EQ(RC.Node, A.cfg().nodesOnLine(4).front());
  // Seeds: the criterion node plus the one reaching definition (line 2;
  // line 1 is killed).
  std::set<unsigned> SeedLines;
  for (unsigned Seed : RC.Seeds)
    SeedLines.insert(A.cfg().node(Seed).S->getLoc().Line);
  EXPECT_EQ(SeedLines, (std::set<unsigned>{2, 4}));
}

TEST(CriterionTest, EmptyVarsDefaultToUsesAtLine) {
  Analysis A = analyzeOk("a = 1;\nb = 2;\nwrite(a + b);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(3, {}));
  EXPECT_EQ(RC.VarIds.size(), 2u);
}

TEST(CriterionTest, VariableNotUsedAtLineStillSliceable) {
  // Slicing on a variable not mentioned at the criterion line seeds
  // from its reaching definitions only.
  Analysis A = analyzeOk("z = 7;\nwrite(1);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(2, {"z"}));
  std::set<unsigned> SeedLines;
  for (unsigned Seed : RC.Seeds)
    SeedLines.insert(A.cfg().node(Seed).S->getLoc().Line);
  EXPECT_EQ(SeedLines, (std::set<unsigned>{1, 2}));
}

TEST(CriterionTest, ReportsMissingLine) {
  Analysis A = analyzeOk("write(1);\n");
  ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Criterion(99, {}));
  ASSERT_FALSE(RC.hasValue());
  EXPECT_NE(RC.diags().diags()[0].Message.find("no statement"),
            std::string::npos);
}

TEST(CriterionTest, ReportsUnknownVariable) {
  Analysis A = analyzeOk("write(1);\n");
  ErrorOr<ResolvedCriterion> RC =
      resolveCriterion(A, Criterion(1, {"phantom"}));
  ASSERT_FALSE(RC.hasValue());
  EXPECT_NE(RC.diags().diags()[0].Message.find("does not occur"),
            std::string::npos);
}

TEST(CriterionTest, LeftmostNodeWinsOnSharedLine) {
  // `if (eof()) goto L;` puts a predicate and a jump on one line; the
  // predicate starts the line and is the criterion statement.
  Analysis A = analyzeOk("if (eof()) goto L;\nwrite(1);\nL: write(2);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(1, {}));
  EXPECT_EQ(A.cfg().node(RC.Node).Kind, CfgNodeKind::Predicate);
}

//===----------------------------------------------------------------------===//
// Algorithm metadata and dispatch
//===----------------------------------------------------------------------===//

TEST(SlicerTest, AlgorithmNamesAreUnique) {
  std::set<std::string> Names;
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
        SliceAlgorithm::AgrawalLst, SliceAlgorithm::Structured,
        SliceAlgorithm::Conservative, SliceAlgorithm::BallHorwitz,
        SliceAlgorithm::Lyle, SliceAlgorithm::Gallagher,
        SliceAlgorithm::JiangZhouRobson, SliceAlgorithm::Weiser})
    Names.insert(algorithmName(Algorithm));
  EXPECT_EQ(Names.size(), 10u);
}

TEST(SlicerTest, SoundnessFlagsMatchThePaper) {
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::Conventional));
  EXPECT_TRUE(algorithmIsSound(SliceAlgorithm::Agrawal));
  EXPECT_TRUE(algorithmIsSound(SliceAlgorithm::BallHorwitz));
  EXPECT_TRUE(algorithmIsSound(SliceAlgorithm::Lyle));
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::Gallagher));
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::JiangZhouRobson));
  EXPECT_FALSE(algorithmIsSound(SliceAlgorithm::Weiser))
      << "Weiser never includes the jump statements (Section 5)";
}

TEST(SlicerTest, DispatchMatchesDirectCalls) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion RC =
      *resolveCriterion(A, paperExample("fig3a").Crit);
  EXPECT_EQ(computeSlice(A, RC, SliceAlgorithm::Agrawal).Nodes,
            sliceAgrawal(A, RC).Nodes);
  EXPECT_EQ(computeSlice(A, RC, SliceAlgorithm::Lyle).Nodes,
            sliceLyle(A, RC).Nodes);
}

TEST(SlicerTest, ConvenienceOverloadPropagatesErrors) {
  Analysis A = analyzeOk("write(1);\n");
  ErrorOr<SliceResult> R =
      computeSlice(A, Criterion(55, {}), SliceAlgorithm::Agrawal);
  EXPECT_FALSE(R.hasValue());
}

TEST(SlicerTest, EntryIsAlwaysInTheSlice) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
        SliceAlgorithm::BallHorwitz}) {
    SliceResult R =
        *computeSlice(A, paperExample("fig1a").Crit, Algorithm);
    EXPECT_TRUE(R.contains(A.cfg().entry()))
        << "the dummy predicate (paper's node 0) anchors every slice";
  }
}

TEST(SlicerTest, TraversalCountersOnlySetByFigure7) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion RC = *resolveCriterion(A, paperExample("fig3a").Crit);
  EXPECT_EQ(sliceConventional(A, RC).Traversals, 0u);
  SliceResult General = sliceAgrawal(A, RC);
  EXPECT_EQ(General.ProductiveTraversals, 1u);
  EXPECT_EQ(General.Traversals, 2u) << "one productive + one fixpoint check";
}

//===----------------------------------------------------------------------===//
// Slice printing (the paper's textual figures)
//===----------------------------------------------------------------------===//

TEST(SlicePrinterTest, PrintsFigure3cWithReassociatedLabel) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig3a").Crit,
                                SliceAlgorithm::Agrawal);
  std::string Text = printSlice(A, R);
  EXPECT_EQ(Text, "2: positives = 0;\n"
                  "3: L3: if (eof()) {\n"
                  "  3: goto L14;\n"
                  "}\n"
                  "4: read(x);\n"
                  "5: if (x > 0) {\n"
                  "  5: goto L8;\n"
                  "}\n"
                  "7: goto L13;\n"
                  "8: L8: positives = positives + 1;\n"
                  "13: L13: goto L3;\n"
                  "15: L14: write(positives);\n");
}

TEST(SlicePrinterTest, PrintsFigure5cContinueSlice) {
  Analysis A = analyzeOk(paperExample("fig5a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig5a").Crit,
                                SliceAlgorithm::Agrawal);
  std::string Text = printSlice(A, R);
  EXPECT_EQ(Text, "2: positives = 0;\n"
                  "3: while (!eof()) {\n"
                  "  4: read(x);\n"
                  "  5: if (x <= 0) {\n"
                  "    7: continue;\n"
                  "  }\n"
                  "  8: positives = positives + 1;\n"
                  "}\n"
                  "14: write(positives);\n");
}

TEST(SlicePrinterTest, LabelReassociatedToExitPrintsTrailing) {
  // The goto's label lands past every kept statement.
  Analysis A = analyzeOk("read(c);\nif (c > 0) goto L;\nwrite(c);\n"
                         "L: write(9);\n");
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(3, {"c"}));
  SliceResult R = sliceAgrawal(A, RC);
  ASSERT_TRUE(R.ReassociatedLabels.count("L"));
  EXPECT_EQ(R.ReassociatedLabels.at("L"), A.cfg().exit());
  std::string Text = printSlice(A, R);
  EXPECT_NE(Text.find("L:\n"), std::string::npos)
      << "a label re-associated past the program tail prints standalone:\n"
      << Text;
}

TEST(SlicePrinterTest, SummaryShowsLineSetAndCount) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig1a").Crit,
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(summarizeSlice(A, R), "{2, 3, 4, 5, 7, 12} (6 lines)");
}

TEST(SlicePrinterTest, StmtIdsMatchLineSetGranularity) {
  Analysis A = analyzeOk(paperExample("fig14a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig14a").Crit,
                                SliceAlgorithm::Structured);
  // Four lines {1, 3, 4, 9} -> four statements.
  EXPECT_EQ(R.lineSet(A.cfg()).size(), 4u);
  EXPECT_EQ(R.stmtIds(A.cfg()).size(), 4u);
}

TEST(SlicePrinterTest, SwitchSliceKeepsOnlyContributingClauses) {
  Analysis A = analyzeOk(paperExample("fig14a").Source);
  SliceResult R = *computeSlice(A, paperExample("fig14a").Crit,
                                SliceAlgorithm::Structured);
  std::string Text = printSlice(A, R);
  EXPECT_NE(Text.find("case 1:"), std::string::npos);
  EXPECT_NE(Text.find("case 2:"), std::string::npos);
  EXPECT_EQ(Text.find("case 3:"), std::string::npos)
      << "the empty clause disappears, as in Figure 14-b:\n"
      << Text;
}

} // namespace
