//===- tests/CfgTest.cpp - CFG builder unit tests -----------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

struct Built {
  std::unique_ptr<Program> Prog;
  Cfg C;
};

Built buildOk(const std::string &Source) {
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source);
  EXPECT_TRUE(Prog.hasValue())
      << (Prog.hasValue() ? "" : Prog.diags().str());
  ErrorOr<Cfg> C = Cfg::build(**Prog);
  EXPECT_TRUE(C.hasValue()) << (C.hasValue() ? "" : C.diags().str());
  return {std::move(*Prog), std::move(*C)};
}

/// The unique node on \p Line.
unsigned nodeOn(const Cfg &C, unsigned Line) {
  std::vector<unsigned> Nodes = C.nodesOnLine(Line);
  EXPECT_EQ(Nodes.size(), 1u) << "line " << Line;
  return Nodes.front();
}

TEST(CfgTest, StraightLineProgram) {
  Built B = buildOk("x = 1;\ny = 2;\nwrite(x + y);\n");
  const Cfg &C = B.C;
  // Entry, Exit, three statements.
  EXPECT_EQ(C.numNodes(), 5u);
  unsigned N1 = nodeOn(C, 1), N2 = nodeOn(C, 2), N3 = nodeOn(C, 3);
  EXPECT_TRUE(C.graph().hasEdge(C.entry(), N1));
  EXPECT_TRUE(C.graph().hasEdge(N1, N2));
  EXPECT_TRUE(C.graph().hasEdge(N2, N3));
  EXPECT_TRUE(C.graph().hasEdge(N3, C.exit()));
  // The FOW augmentation edge.
  EXPECT_TRUE(C.graph().hasEdge(C.entry(), C.exit()));
}

TEST(CfgTest, IfElseDiamond) {
  Built B = buildOk("if (x > 0)\ny = 1; else\ny = 2;\nwrite(y);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), Then = nodeOn(C, 2), Else = nodeOn(C, 3),
           After = nodeOn(C, 4);
  EXPECT_EQ(C.node(Cond).Kind, CfgNodeKind::Predicate);
  const BranchTargets *Branch = C.branchTargets(Cond);
  ASSERT_NE(Branch, nullptr);
  EXPECT_EQ(Branch->TrueTarget, Then);
  EXPECT_EQ(Branch->FalseTarget, Else);
  EXPECT_TRUE(C.graph().hasEdge(Then, After));
  EXPECT_TRUE(C.graph().hasEdge(Else, After));
}

TEST(CfgTest, IfWithoutElseFallsThrough) {
  Built B = buildOk("if (x > 0)\ny = 1;\nwrite(y);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), Then = nodeOn(C, 2), After = nodeOn(C, 3);
  const BranchTargets *Branch = C.branchTargets(Cond);
  ASSERT_NE(Branch, nullptr);
  EXPECT_EQ(Branch->TrueTarget, Then);
  EXPECT_EQ(Branch->FalseTarget, After);
}

TEST(CfgTest, WhileLoopShape) {
  Built B = buildOk("while (x > 0)\nx = x - 1;\nwrite(x);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), Body = nodeOn(C, 2), After = nodeOn(C, 3);
  const BranchTargets *Branch = C.branchTargets(Cond);
  ASSERT_NE(Branch, nullptr);
  EXPECT_EQ(Branch->TrueTarget, Body);
  EXPECT_EQ(Branch->FalseTarget, After);
  EXPECT_TRUE(C.graph().hasEdge(Body, Cond)) << "back edge";
}

TEST(CfgTest, DoWhileEntersBodyFirst) {
  // The predicate node carries the do-while statement's location (the
  // `do` keyword, line 1); the body statement starts line 2.
  Built B = buildOk("do\nx = x - 1; while (x > 0);\nwrite(x);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), Body = nodeOn(C, 2);
  const Stmt *Do = B.Prog->topLevel()[0];
  EXPECT_EQ(C.entryOf(Do), Body);
  EXPECT_EQ(C.nodeOf(Do), Cond);
  EXPECT_TRUE(C.graph().hasEdge(C.entry(), Body));
  EXPECT_TRUE(C.graph().hasEdge(Body, Cond));
  EXPECT_TRUE(C.graph().hasEdge(Cond, Body)) << "loop back edge";
}

TEST(CfgTest, ForLoopWiresInitCondStepBody) {
  Built B = buildOk("for (i = 0; i < 3; i = i + 1)\nwrite(i);\nwrite(9);\n");
  const Cfg &C = B.C;
  const auto *For = cast<ForStmt>(B.Prog->topLevel()[0]);
  unsigned Init = C.nodeOf(For->getInit());
  unsigned Cond = C.nodeOf(For);
  unsigned Step = C.nodeOf(For->getStep());
  unsigned Body = nodeOn(C, 2);
  unsigned After = nodeOn(C, 3);
  EXPECT_EQ(C.entryOf(For), Init);
  EXPECT_TRUE(C.graph().hasEdge(Init, Cond));
  const BranchTargets *Branch = C.branchTargets(Cond);
  ASSERT_NE(Branch, nullptr);
  EXPECT_EQ(Branch->TrueTarget, Body);
  EXPECT_EQ(Branch->FalseTarget, After);
  EXPECT_TRUE(C.graph().hasEdge(Body, Step));
  EXPECT_TRUE(C.graph().hasEdge(Step, Cond));
}

TEST(CfgTest, ForeverLoopWithBreakIsExitReachable) {
  Built B = buildOk("for (;;) {\nif (x > 3) break;\nx = x + 1;\n}\n"
                    "write(x);\n");
  const Cfg &C = B.C;
  const auto *For = cast<ForStmt>(B.Prog->topLevel()[0]);
  unsigned Cond = C.nodeOf(For);
  EXPECT_EQ(C.node(Cond).Cond, nullptr) << "constant-true predicate";
  // Only the true edge exists.
  const BranchTargets *Branch = C.branchTargets(Cond);
  ASSERT_NE(Branch, nullptr);
  EXPECT_EQ(Branch->TrueTarget, Branch->FalseTarget);
}

TEST(CfgTest, ForeverLoopWithoutEscapeIsRejected) {
  ErrorOr<std::unique_ptr<Program>> Prog =
      parseProgram("for (;;) x = 1;\nwrite(x);\n");
  ASSERT_TRUE(Prog.hasValue());
  ErrorOr<Cfg> C = Cfg::build(**Prog);
  ASSERT_FALSE(C.hasValue());
  EXPECT_NE(C.diags().diags()[0].Message.find("cannot reach program exit"),
            std::string::npos);
}

TEST(CfgTest, SelfLoopGotoIsRejected) {
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram("L: goto L;\n");
  ASSERT_TRUE(Prog.hasValue());
  ErrorOr<Cfg> C = Cfg::build(**Prog);
  EXPECT_FALSE(C.hasValue());
}

TEST(CfgTest, BreakAndContinueTargets) {
  Built B = buildOk("while (x > 0) {\nif (x == 1)\nbreak;\ncontinue;\n}\n"
                    "write(x);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), Break = nodeOn(C, 3), Continue = nodeOn(C, 4),
           After = nodeOn(C, 6);
  ASSERT_TRUE(C.jumpTarget(Break).has_value());
  EXPECT_EQ(*C.jumpTarget(Break), After);
  ASSERT_TRUE(C.jumpTarget(Continue).has_value());
  EXPECT_EQ(*C.jumpTarget(Continue), Cond);
}

TEST(CfgTest, ContinueInForTargetsStep) {
  Built B = buildOk("for (i = 0; i < 9; i = i + 1) {\ncontinue;\n}\n"
                    "write(i);\n");
  const Cfg &C = B.C;
  const auto *For = cast<ForStmt>(B.Prog->topLevel()[0]);
  unsigned Continue = nodeOn(C, 2);
  EXPECT_EQ(*C.jumpTarget(Continue), C.nodeOf(For->getStep()));
}

TEST(CfgTest, ReturnTargetsExit) {
  Built B = buildOk("return 3;\nwrite(1);\n");
  const Cfg &C = B.C;
  unsigned Return = nodeOn(C, 1);
  EXPECT_EQ(*C.jumpTarget(Return), C.exit());
}

TEST(CfgTest, SwitchDispatchAndFallthrough) {
  Built B = buildOk("switch (x) { case 1:\ny = 1;\ncase 2:\ny = 2;\n"
                    "break; default:\ny = 3;\n}\nwrite(y);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), Case1 = nodeOn(C, 2), Case2 = nodeOn(C, 4),
           Break = nodeOn(C, 5), Default = nodeOn(C, 6), After = nodeOn(C, 8);
  const SwitchTargets *Switch = C.switchTargets(Cond);
  ASSERT_NE(Switch, nullptr);
  ASSERT_EQ(Switch->Cases.size(), 2u);
  EXPECT_EQ(Switch->Cases[0], (std::pair<int64_t, unsigned>{1, Case1}));
  EXPECT_EQ(Switch->Cases[1], (std::pair<int64_t, unsigned>{2, Case2}));
  EXPECT_EQ(Switch->DefaultTarget, Default);
  EXPECT_TRUE(C.graph().hasEdge(Case1, Case2)) << "C fall-through";
  EXPECT_EQ(*C.jumpTarget(Break), After);
}

TEST(CfgTest, SwitchWithoutDefaultFallsPast) {
  Built B = buildOk("switch (x) { case 1:\ny = 1; }\nwrite(y);\n");
  const Cfg &C = B.C;
  unsigned Cond = nodeOn(C, 1), After = nodeOn(C, 3);
  const SwitchTargets *Switch = C.switchTargets(Cond);
  ASSERT_NE(Switch, nullptr);
  EXPECT_EQ(Switch->DefaultTarget, After);
}

TEST(CfgTest, GotoEdgesResolveForwardAndBackward) {
  Built B = buildOk("L1: x = x + 1;\nif (x < 3) goto L1;\ngoto L2;\n"
                    "x = 0;\nL2: write(x);\n");
  const Cfg &C = B.C;
  unsigned Target1 = nodeOn(C, 1);
  unsigned Forward = nodeOn(C, 3);
  unsigned Target2 = nodeOn(C, 5);
  std::vector<unsigned> Line2 = C.nodesOnLine(2);
  ASSERT_EQ(Line2.size(), 2u) << "predicate + embedded goto";
  EXPECT_TRUE(C.graph().hasEdge(Forward, Target2));
  bool BackEdgeFound = false;
  for (unsigned Node : Line2)
    if (C.jumpTarget(Node) && *C.jumpTarget(Node) == Target1)
      BackEdgeFound = true;
  EXPECT_TRUE(BackEdgeFound);
}

TEST(CfgTest, AugmentedGraphAddsJumpFallthroughEdges) {
  Built B = buildOk("while (x > 0) {\nbreak;\nx = 1;\n}\nwrite(x);\n");
  const Cfg &C = B.C;
  unsigned Break = nodeOn(C, 2), Next = nodeOn(C, 3);
  std::vector<int> Parent(C.numNodes(), -1);
  // Minimal ILS info: the break falls lexically into line 3.
  Parent[Break] = static_cast<int>(Next);
  Digraph Aug = C.buildAugmentedGraph(Parent);
  EXPECT_FALSE(C.graph().hasEdge(Break, Next));
  EXPECT_TRUE(Aug.hasEdge(Break, Next));
  EXPECT_EQ(Aug.numEdges(), C.graph().numEdges() + 1);
}

TEST(CfgTest, LabelsOfVirtualNodes) {
  Built B = buildOk("write(1);\n");
  EXPECT_EQ(B.C.labelOf(B.C.entry()), "entry");
  EXPECT_EQ(B.C.labelOf(B.C.exit()), "exit");
  EXPECT_EQ(B.C.labelOf(nodeOn(B.C, 1)), "1");
}

TEST(CfgTest, EmptyStatementsGetNodes) {
  Built B = buildOk(";\nwrite(1);\n");
  EXPECT_EQ(B.C.numNodes(), 4u);
  unsigned Empty = nodeOn(B.C, 1);
  EXPECT_EQ(B.C.node(Empty).Kind, CfgNodeKind::Statement);
}

TEST(CfgTest, UnreachableCodeStillBuilds) {
  // Line 2 is unreachable from entry but can reach exit; allowed.
  Built B = buildOk("return;\nwrite(1);\n");
  unsigned Dead = nodeOn(B.C, 2);
  EXPECT_TRUE(B.C.graph().preds(Dead).empty());
}

} // namespace
