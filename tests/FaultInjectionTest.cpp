//===- tests/FaultInjectionTest.cpp - Error-path coverage by injection --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Exhaustive coverage of the pipeline's resource-failure paths: a
/// counting pass sizes how many guard checkpoints one full analysis +
/// slice passes through, then every ordinal is armed in turn and the
/// run repeated. The robustness contract (DESIGN.md) requires that each
/// injected failure surfaces as a non-empty ResourceExhausted
/// diagnostic — never a crash, hang, or silent partial result — and
/// that the very next disarmed run succeeds, proving no failure leaks
/// state into the process.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

const char *Summation = R"(sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
)";

/// One full pipeline: analyze, then slice with the paper's Figure-7
/// algorithm. Mirrors what a library user does; every fallible step
/// funnels through ErrorOr.
ErrorOr<SliceResult> runPipeline(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  if (!A)
    return A.diags();
  return computeSlice(*A, Criterion(14, {"sum"}), SliceAlgorithm::Agrawal);
}

/// Counts the checkpoints one clean pipeline run observes.
uint64_t sizePipeline(const std::string &Source) {
  FaultInjection::resetCount();
  ErrorOr<SliceResult> R = runPipeline(Source);
  EXPECT_TRUE(R.hasValue()) << "counting pass must succeed: "
                            << (R.hasValue() ? "" : R.diags().str());
  return FaultInjection::observedCheckpoints();
}

TEST(FaultInjectionTest, EveryCheckpointFailsCleanlyAndRecovers) {
  uint64_t Total = sizePipeline(Summation);
  ASSERT_GT(Total, 0u) << "the pipeline must poll the guard";

  for (uint64_t At = 1; At <= Total; ++At) {
    {
      FaultInjection::ScopedArm Arm(At);
      ErrorOr<SliceResult> R = runPipeline(Summation);
      // Slicing charges the same meter, so the armed ordinal always
      // lands within the run and the pipeline must fail.
      ASSERT_FALSE(R.hasValue())
          << "fault at checkpoint " << At << " of " << Total
          << " was swallowed";
      EXPECT_FALSE(R.diags().empty())
          << "fault at checkpoint " << At << " failed without diagnostics";
      EXPECT_TRUE(R.diags().hasKind(DiagKind::ResourceExhausted))
          << "fault at checkpoint " << At
          << " misclassified: " << R.diags().str();
    }
    // Disarmed, the identical run succeeds again: the failure left no
    // partially-constructed state behind (guards are per-Analysis, the
    // injector is the only global, and ScopedArm cleared it).
    ErrorOr<SliceResult> R = runPipeline(Summation);
    ASSERT_TRUE(R.hasValue())
        << "pipeline does not recover after fault at checkpoint " << At
        << ": " << R.diags().str();
  }
}

TEST(FaultInjectionTest, InjectedFailuresAreDeterministic) {
  uint64_t Total = sizePipeline(Summation);
  ASSERT_GT(Total, 2u);
  uint64_t At = Total / 2;

  auto FailureMessage = [&]() {
    FaultInjection::ScopedArm Arm(At);
    ErrorOr<SliceResult> R = runPipeline(Summation);
    EXPECT_FALSE(R.hasValue());
    return R.hasValue() ? std::string() : R.diags().str();
  };
  std::string First = FailureMessage();
  EXPECT_EQ(First, FailureMessage())
      << "same input, same ordinal, different failure";
  EXPECT_NE(First.find("injected fault"), std::string::npos) << First;
}

TEST(FaultInjectionTest, GeneratedProgramsSurviveASweep) {
  // The same exhaustive sweep over machine-generated programs in both
  // dialects, catching error paths the fixed program never reaches
  // (switch lowering, structured-loop wiring).
  for (bool Gotos : {false, true}) {
    GenOptions Gen;
    Gen.Seed = Gotos ? 7 : 11;
    Gen.TargetStmts = 25;
    Gen.AllowGotos = Gotos;
    std::string Source = generateProgram(Gen);

    FaultInjection::resetCount();
    {
      ErrorOr<Analysis> A = Analysis::fromSource(Source);
      ASSERT_TRUE(A.hasValue());
    }
    uint64_t Total = FaultInjection::observedCheckpoints();
    ASSERT_GT(Total, 0u);

    for (uint64_t At = 1; At <= Total; ++At) {
      {
        FaultInjection::ScopedArm Arm(At);
        ErrorOr<Analysis> A = Analysis::fromSource(Source);
        ASSERT_FALSE(A.hasValue())
            << "dialect " << Gotos << ": fault at " << At << " swallowed";
        EXPECT_TRUE(A.diags().hasKind(DiagKind::ResourceExhausted))
            << "dialect " << Gotos << ": fault at " << At
            << " misclassified: " << A.diags().str();
      }
      ErrorOr<Analysis> A = Analysis::fromSource(Source);
      ASSERT_TRUE(A.hasValue())
          << "dialect " << Gotos << ": no recovery after fault at " << At;
    }
  }
}

TEST(FaultInjectionTest, ExhaustedAnalysisIsNeverHandedOut) {
  // A fault during any construction phase must not yield a usable
  // Analysis with half-built dependence graphs.
  FaultInjection::resetCount();
  {
    ErrorOr<Analysis> A = Analysis::fromSource(Summation);
    ASSERT_TRUE(A.hasValue());
  }
  uint64_t Total = FaultInjection::observedCheckpoints();
  for (uint64_t At = 1; At <= Total; At += 7) {
    FaultInjection::ScopedArm Arm(At);
    ErrorOr<Analysis> A = Analysis::fromSource(Summation);
    EXPECT_FALSE(A.hasValue()) << "exhausted analysis escaped at " << At;
  }
}

TEST(FaultInjectionTest, InterpreterChargesTheSharedGuard) {
  Budget B;
  ErrorOr<Analysis> A = Analysis::fromSource(Summation, B);
  ASSERT_TRUE(A.hasValue());

  ErrorOr<ResolvedCriterion> RC = resolveCriterion(*A, Criterion(14, {"sum"}));
  ASSERT_TRUE(RC.hasValue());

  ExecOptions Exec;
  Exec.Input = {1, -2, 3};
  Exec.Guard = &A->guard();
  FaultInjection::ScopedArm Arm(1); // Very next checkpoint: an interp step.
  ExecResult R = runOriginal(*A, RC->Node, RC->VarIds, Exec);
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.ResourceExhausted);
  EXPECT_TRUE(A->guard().exhausted());
  EXPECT_FALSE(A->guard().reason().empty());
}

} // namespace
