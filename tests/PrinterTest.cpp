//===- tests/PrinterTest.cpp - Pretty-printer unit tests ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source);
  EXPECT_TRUE(Prog.hasValue())
      << (Prog.hasValue() ? "" : Prog.diags().str());
  return Prog.hasValue() ? std::move(*Prog) : nullptr;
}

std::string printOf(const std::string &Source) {
  auto Prog = parseOk(Source);
  return Prog ? printProgram(*Prog) : "";
}

TEST(PrinterTest, MinimalParenthesization) {
  EXPECT_EQ(printOf("x = (a + b) * c;"), "x = (a + b) * c;\n");
  EXPECT_EQ(printOf("x = a + b * c;"), "x = a + b * c;\n");
  EXPECT_EQ(printOf("x = a + (b + c);"), "x = a + (b + c);\n")
      << "right-nested same-precedence needs parens (left-assoc)";
  EXPECT_EQ(printOf("x = -(a + b);"), "x = -(a + b);\n");
  EXPECT_EQ(printOf("x = !(a < b) && c > 0;"), "x = !(a < b) && c > 0;\n");
  EXPECT_EQ(printOf("x = a < b == (c > d);"), "x = a < b == c > d;\n")
      << "relational binds tighter than equality, so no parens needed";
  EXPECT_EQ(printOf("x = (a == b) < c;"), "x = (a == b) < c;\n");
}

TEST(PrinterTest, CallsAndArguments) {
  EXPECT_EQ(printOf("x = f(a, b + 1, g());"), "x = f(a, b + 1, g());\n");
}

TEST(PrinterTest, StatementsRenderCanonically) {
  const char *Source = "L: x = 1;\n"
                       "if (x > 0) { write(x); } else { write(0); }\n"
                       "do { x = x - 1; } while (x > 0);\n"
                       "for (i = 0; i < 3; i = i + 1) { ; }\n"
                       "for (; x < 9;) { break; }\n"
                       "switch (x) { case 1: y = 1; break; default: }\n"
                       "goto L;\n";
  std::string Printed = printOf(Source);
  // Canonical print re-parses and re-prints to the same text.
  EXPECT_EQ(printOf(Printed), Printed);
  EXPECT_NE(Printed.find("L: x = 1;"), std::string::npos);
  EXPECT_NE(Printed.find("} while (x > 0);"), std::string::npos);
  EXPECT_NE(Printed.find("for (i = 0; i < 3; i = i + 1)"),
            std::string::npos);
  EXPECT_NE(Printed.find("for (; x < 9; )"), std::string::npos);
  EXPECT_NE(Printed.find("default:"), std::string::npos);
}

TEST(PrinterTest, ReadClauseInForHeader) {
  std::string Printed = printOf("for (read(x); x > 0; read(x)) write(x);\n");
  EXPECT_NE(Printed.find("for (read(x); x > 0; read(x))"),
            std::string::npos);
}

TEST(PrinterTest, LineNumbersPrefixStatements) {
  auto Prog = parseOk("x = 1;\nwrite(x);\n");
  PrintOptions Opts;
  Opts.ShowLineNumbers = true;
  EXPECT_EQ(printProgram(*Prog, Opts), "1: x = 1;\n2: write(x);\n");
}

TEST(PrinterTest, KeepSetFiltersStatements) {
  auto Prog = parseOk("x = 1;\ny = 2;\nwrite(x);\n");
  std::set<unsigned> Keep = {Prog->topLevel()[0]->getId(),
                             Prog->topLevel()[2]->getId()};
  PrintOptions Opts;
  Opts.KeepIds = &Keep;
  EXPECT_EQ(printProgram(*Prog, Opts), "x = 1;\nwrite(x);\n");
}

TEST(PrinterTest, DroppedConstructHoistsKeptChildren) {
  auto Prog = parseOk("if (c > 0) {\nx = 1;\n}\nwrite(x);\n");
  const auto *If = cast<IfStmt>(Prog->topLevel()[0]);
  const Stmt *Assign = cast<BlockStmt>(If->getThen())->getBody()[0];
  std::set<unsigned> Keep = {Assign->getId(),
                             Prog->topLevel()[1]->getId()};
  PrintOptions Opts;
  Opts.KeepIds = &Keep;
  EXPECT_EQ(printProgram(*Prog, Opts), "x = 1;\nwrite(x);\n")
      << "a kept statement inside a dropped if is hoisted";
}

TEST(PrinterTest, ElseBranchOmittedWhenEmptyInProjection) {
  auto Prog = parseOk("if (c > 0) {\nx = 1;\n} else {\ny = 2;\n}\n"
                      "write(x);\n");
  const auto *If = cast<IfStmt>(Prog->topLevel()[0]);
  const Stmt *Then = cast<BlockStmt>(If->getThen())->getBody()[0];
  std::set<unsigned> Keep = {If->getId(), Then->getId(),
                             Prog->topLevel()[1]->getId()};
  PrintOptions Opts;
  Opts.KeepIds = &Keep;
  std::string Printed = printProgram(*Prog, Opts);
  EXPECT_EQ(Printed.find("else"), std::string::npos) << Printed;
}

TEST(PrinterTest, ExtraLabelsPrintBeforeOwnLabel) {
  auto Prog = parseOk("M: write(1);\n");
  std::map<unsigned, std::vector<std::string>> Extra = {
      {Prog->topLevel()[0]->getId(), {"L9"}}};
  PrintOptions Opts;
  Opts.ExtraLabels = &Extra;
  EXPECT_EQ(printProgram(*Prog, Opts), "L9: M: write(1);\n");
}

TEST(PrinterTest, ExitLabelsPrintTrailing) {
  auto Prog = parseOk("write(1);\n");
  std::map<unsigned, std::vector<std::string>> Extra = {
      {PrintOptions::ExitLabelKey, {"LEnd"}}};
  PrintOptions Opts;
  Opts.ExtraLabels = &Extra;
  EXPECT_EQ(printProgram(*Prog, Opts), "write(1);\nLEnd: ;\n")
      << "the empty statement keeps the trailing label re-parseable";
}

TEST(PrinterTest, SuppressedLabelsAreOmitted) {
  auto Prog = parseOk("M: write(1);\nK: write(2);\n");
  std::set<std::string> Suppress = {"M"};
  PrintOptions Opts;
  Opts.SuppressLabels = &Suppress;
  EXPECT_EQ(printProgram(*Prog, Opts), "write(1);\nK: write(2);\n");
}

TEST(PrinterTest, NestedIndentationIsTwoSpaces) {
  std::string Printed =
      printOf("while (a > 0) {\nif (b > 0) {\nwrite(1);\n}\n}\n");
  EXPECT_NE(Printed.find("\n  if (b > 0) {"), std::string::npos);
  EXPECT_NE(Printed.find("\n    write(1);"), std::string::npos);
}

} // namespace
