//===- tests/GraphTest.cpp - Digraph and dominator tests ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "graph/Digraph.h"
#include "graph/Dominators.h"
#include "graph/Dot.h"

#include <gtest/gtest.h>

#include <random>

using namespace jslice;

namespace {

TEST(DigraphTest, AddEdgeIgnoresDuplicates) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  EXPECT_EQ(G.succs(0).size(), 2u);
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_FALSE(G.hasEdge(1, 0));
}

TEST(DigraphTest, ReversedFlipsEveryEdge) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  Digraph R = G.reversed();
  EXPECT_TRUE(R.hasEdge(1, 0));
  EXPECT_TRUE(R.hasEdge(3, 2));
  EXPECT_EQ(R.numEdges(), G.numEdges());
}

TEST(DigraphTest, ReachabilityStopsAtUnconnectedComponents) {
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(3, 4); // disconnected from 0
  std::vector<bool> Reach = reachableFrom(G, 0);
  EXPECT_TRUE(Reach[0] && Reach[1] && Reach[2]);
  EXPECT_FALSE(Reach[3] || Reach[4]);
}

TEST(DigraphTest, ReversePostorderVisitsParentsFirstOnDags) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  std::vector<unsigned> RPO = reversePostorder(G, 0);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), 0u);
  EXPECT_EQ(RPO.back(), 3u);
}

/// The classic Lengauer–Tarjan paper example graph.
Digraph ltExampleGraph() {
  // Nodes: 0=R 1=A 2=B 3=C 4=D 5=E 6=F 7=G 8=H 9=I 10=J 11=K 12=L
  Digraph G(13);
  auto E = [&](unsigned A, unsigned B) { G.addEdge(A, B); };
  E(0, 1);  // R->A
  E(0, 2);  // R->B
  E(0, 3);  // R->C
  E(1, 4);  // A->D
  E(2, 1);  // B->A
  E(2, 4);  // B->D
  E(2, 5);  // B->E
  E(3, 6);  // C->F
  E(3, 7);  // C->G
  E(4, 12); // D->L
  E(5, 8);  // E->H
  E(6, 9);  // F->I
  E(7, 9);  // G->I
  E(7, 10); // G->J
  E(8, 5);  // H->E
  E(8, 11); // H->K
  E(9, 11); // I->K
  E(10, 9); // J->I
  E(11, 9); // K->I
  E(11, 0); // K->R
  E(12, 8); // L->H
  return G;
}

TEST(DominatorsTest, MatchesLengauerTarjanPaperExample) {
  Digraph G = ltExampleGraph();
  // Published idoms: A<-R B<-R C<-R D<-R E<-R F<-C G<-C H<-R I<-R J<-G
  // K<-R L<-D.
  std::vector<int> Expected = {-1, 0, 0, 0, 0, 0, 3, 3, 0, 0, 7, 0, 4};
  DomTree Iter = computeDominatorsIterative(G, 0);
  DomTree LT = computeDominatorsLengauerTarjan(G, 0);
  for (unsigned Node = 0; Node != 13; ++Node) {
    EXPECT_EQ(Iter.idom(Node), Expected[Node]) << "iterative, node " << Node;
    EXPECT_EQ(LT.idom(Node), Expected[Node]) << "LT, node " << Node;
  }
}

TEST(DominatorsTest, DominatesIsReflexiveAndRootDominatesAll) {
  Digraph G = ltExampleGraph();
  DomTree T = computeDominatorsIterative(G, 0);
  for (unsigned Node = 0; Node != 13; ++Node) {
    EXPECT_TRUE(T.dominates(Node, Node));
    EXPECT_TRUE(T.dominates(0, Node));
    EXPECT_FALSE(T.properlyDominates(Node, Node));
  }
}

TEST(DominatorsTest, UnreachableNodesAreExcluded) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(2, 3); // unreachable from 0
  DomTree T = computeDominatorsIterative(G, 0);
  EXPECT_TRUE(T.isReachable(1));
  EXPECT_FALSE(T.isReachable(2));
  EXPECT_FALSE(T.isReachable(3));
  EXPECT_FALSE(T.dominates(0, 3));
}

TEST(DominatorsTest, PreorderVisitsParentsBeforeChildren) {
  Digraph G = ltExampleGraph();
  DomTree T = computeDominatorsIterative(G, 0);
  std::vector<int> Position(13, -1);
  const std::vector<unsigned> &Pre = T.preorder();
  for (unsigned I = 0; I != Pre.size(); ++I)
    Position[Pre[I]] = static_cast<int>(I);
  for (unsigned Node = 0; Node != 13; ++Node) {
    if (T.idom(Node) < 0)
      continue;
    EXPECT_LT(Position[T.idom(Node)], Position[Node]);
  }
}

/// Property sweep: both dominator algorithms agree on random digraphs.
class DominatorCrossCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(DominatorCrossCheck, IterativeEqualsLengauerTarjan) {
  std::mt19937_64 Rng(GetParam());
  unsigned N = 2 + static_cast<unsigned>(Rng() % 60);
  Digraph G(N);
  // A random spanning chain keeps most nodes reachable; extra random
  // edges create joins, loops, and cross edges.
  for (unsigned Node = 1; Node != N; ++Node)
    if (Rng() % 4 != 0)
      G.addEdge(static_cast<unsigned>(Rng() % Node), Node);
  unsigned Extra = N * 2;
  for (unsigned I = 0; I != Extra; ++I)
    G.addEdge(static_cast<unsigned>(Rng() % N),
              static_cast<unsigned>(Rng() % N));

  DomTree Iter = computeDominatorsIterative(G, 0);
  DomTree LT = computeDominatorsLengauerTarjan(G, 0);
  for (unsigned Node = 0; Node != N; ++Node)
    EXPECT_EQ(Iter.idom(Node), LT.idom(Node))
        << "seed " << GetParam() << " node " << Node;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DominatorCrossCheck,
                         ::testing::Range(1u, 41u));

TEST(DotTest, RendersDigraphWithHighlights) {
  Digraph G(2);
  G.addEdge(0, 1);
  std::function<bool(unsigned)> Highlight = [](unsigned Node) {
    return Node == 1;
  };
  std::string Dot =
      toDot(G, "g", [](unsigned Node) { return "n" + std::to_string(Node); },
            &Highlight);
  EXPECT_NE(Dot.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(Dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(Dot.find("fillcolor=lightgrey"), std::string::npos);
}

TEST(DotTest, EscapesQuotesInLabels) {
  Digraph G(1);
  std::string Dot =
      toDot(G, "g", [](unsigned) { return std::string("say \"hi\""); });
  EXPECT_NE(Dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(DotTest, DomTreeTextListsChildParentPairs) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  DomTree T = computeDominatorsIterative(G, 0);
  std::string Text =
      domTreeToText(T, [](unsigned Node) { return std::to_string(Node); });
  EXPECT_EQ(Text, "1: 0\n2: 1\n");
}

} // namespace
