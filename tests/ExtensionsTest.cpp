//===- tests/ExtensionsTest.cpp - Weiser and Choi–Ferrante synthesis ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The two Section 5 algorithms implemented beyond the paper's own:
///
///  * Weiser's iterative dataflow slicer [29]: finds the right
///    predicates around jumps but never the jumps themselves;
///  * Choi–Ferrante's synthesis algorithm [8]: executable slices that
///    replace original jumps with synthesized transfers, giving smaller
///    statement sets than Figure 7 while preserving behaviour.
///
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

#include <random>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

//===----------------------------------------------------------------------===//
// Weiser
//===----------------------------------------------------------------------===//

TEST(WeiserTest, NeverIncludesJumpStatements) {
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeOk(Ex.Source);
    SliceResult R = *computeSlice(A, Ex.Crit, SliceAlgorithm::Weiser);
    for (unsigned Node : R.Nodes)
      EXPECT_FALSE(A.cfg().node(Node).isJump())
          << Ex.Name << ": Weiser must not include jumps (Section 5)";
  }
}

TEST(WeiserTest, FindsTheSamePredicatesAsConventionalOnTheFigures) {
  // Section 5: "His algorithm was able to determine which predicates to
  // include in the slice even when the program contained jump
  // statements." On every figure, Weiser's line set matches the
  // conventional slice's (the jump statements the conventional
  // adaptation adds share lines with their predicates).
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeOk(Ex.Source);
    SliceResult Weiser = *computeSlice(A, Ex.Crit, SliceAlgorithm::Weiser);
    EXPECT_EQ(Weiser.lineSet(A.cfg()), Ex.ConventionalLines) << Ex.Name;
  }
}

class WeiserProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(WeiserProperty, EqualsConventionalOnJumpFreePrograms) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 50;
  Opts.AllowStructuredJumps = false;
  Opts.AllowGotos = false;
  std::string Source = generateProgram(Opts);
  Analysis A = analyzeOk(Source);
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SliceResult Weiser = sliceWeiser(A, RC);
    SliceResult Conv = sliceConventional(A, RC);
    EXPECT_EQ(Weiser.Nodes, Conv.Nodes)
        << "criterion line " << Crit.Line << "\n"
        << Source;
  }
}

TEST_P(WeiserProperty, MatchesConventionalMinusJumpsWithJumps) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 50;
  Opts.AllowGotos = true;
  std::string Source = generateProgram(Opts);
  Analysis A = analyzeOk(Source);
  if (!A.cfg().unreachableNodes().empty())
    GTEST_SKIP() << "program has dead code";
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SliceResult Weiser = sliceWeiser(A, RC);
    SliceResult Conv = sliceConventional(A, RC);
    std::set<unsigned> ConvNoJumps;
    for (unsigned Node : Conv.Nodes)
      if (!A.cfg().node(Node).isJump())
        ConvNoJumps.insert(Node);
    EXPECT_EQ(Weiser.Nodes, ConvNoJumps)
        << "criterion line " << Crit.Line << "\n"
        << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeiserProperty, ::testing::Range(1u, 21u));

//===----------------------------------------------------------------------===//
// Choi–Ferrante synthesis
//===----------------------------------------------------------------------===//

TEST(SynthesisTest, KeepsNoJumpStatements) {
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeOk(Ex.Source);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
    for (unsigned Node : S.Kept)
      EXPECT_FALSE(A.cfg().node(Node).isJump()) << Ex.Name;
  }
}

TEST(SynthesisTest, StatementSetIsNeverLargerThanFigure7) {
  // Section 5: "may lead to construction of smaller slices compared to
  // those produced by algorithms that require a slice to be a
  // subprogram of the original program".
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeOk(Ex.Source);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
    SliceResult Fig7 = sliceAgrawal(A, RC);
    EXPECT_LE(S.Kept.size(), Fig7.Nodes.size()) << Ex.Name;
    for (unsigned Node : S.Kept)
      EXPECT_TRUE(Fig7.contains(Node))
          << Ex.Name << ": kept statements come from the Figure 7 slice";
  }
}

TEST(SynthesisTest, SynthesizesJumpsExactlyWhenTheProgramHasThem) {
  {
    Analysis A = analyzeOk(paperExample("fig1a").Source);
    ResolvedCriterion RC =
        *resolveCriterion(A, paperExample("fig1a").Crit);
    EXPECT_EQ(sliceChoiFerranteSynthesis(A, RC).SynthesizedJumps, 0u)
        << "no jumps to re-express in a jump-free program";
  }
  {
    Analysis A = analyzeOk(paperExample("fig3a").Source);
    ResolvedCriterion RC =
        *resolveCriterion(A, paperExample("fig3a").Crit);
    EXPECT_GT(sliceChoiFerranteSynthesis(A, RC).SynthesizedJumps, 0u);
  }
}

TEST(SynthesisTest, TransfersLandInsideTheSlice) {
  Analysis A = analyzeOk(paperExample("fig8a").Source);
  ResolvedCriterion RC = *resolveCriterion(A, paperExample("fig8a").Crit);
  SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
  for (const auto &[FromTo, Dest] : S.Transfers) {
    EXPECT_TRUE(S.Kept.count(FromTo.first)) << "source must be kept";
    EXPECT_TRUE(Dest == A.cfg().exit() || S.Kept.count(Dest))
        << "destination must be kept or exit";
  }
}

TEST(SynthesisTest, DropsTheJumpOnlyLinesOfFigure3) {
  // Figure 7 keeps lines 7 and 13 (pure gotos); the synthesized slice
  // re-expresses them as transfers and keeps only the computing lines.
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion RC = *resolveCriterion(A, paperExample("fig3a").Crit);
  SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
  EXPECT_EQ(S.lineSet(A.cfg()), (std::set<unsigned>{2, 3, 4, 5, 8, 15}));
}

class SynthesisProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SynthesisProperty, SynthesizedSlicesPreserveBehaviour) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 45;
  Opts.AllowGotos = (GetParam() % 2) == 0;
  std::string Source = generateProgram(Opts);
  Analysis A = analyzeOk(Source);
  if (!A.cfg().unreachableNodes().empty())
    GTEST_SKIP() << "program has dead code";

  std::mt19937_64 Rng(GetParam() * 31337 + 5);
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
    for (unsigned Trial = 0; Trial != 4; ++Trial) {
      ExecOptions Exec;
      unsigned Len = static_cast<unsigned>(Rng() % 6);
      for (unsigned I = 0; I != Len; ++I)
        Exec.Input.push_back(static_cast<int64_t>(Rng() % 21) - 10);
      ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Exec);
      if (!Orig.Completed)
        continue;
      ExecResult Synth =
          runTransferProjection(A, S.Kept, RC.Node, RC.VarIds, Exec);
      ASSERT_TRUE(Synth.Completed) << Source;
      EXPECT_EQ(Synth.CriterionValues, Orig.CriterionValues)
          << "criterion line " << Crit.Line << "\n"
          << Source;
    }
  }
}

TEST_P(SynthesisProperty, KeptSetIsFigure7MinusJumpClosureResidue) {
  GenOptions Opts;
  Opts.Seed = GetParam() + 500;
  Opts.TargetStmts = 45;
  Opts.AllowGotos = true;
  std::string Source = generateProgram(Opts);
  Analysis A = analyzeOk(Source);
  if (!A.cfg().unreachableNodes().empty())
    GTEST_SKIP() << "program has dead code";
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
    SliceResult Fig7 = sliceAgrawal(A, RC);
    EXPECT_LE(S.Kept.size(), Fig7.Nodes.size()) << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisProperty,
                         ::testing::Range(1u, 31u));


//===----------------------------------------------------------------------===//
// Flattened emission of synthesized slices
//===----------------------------------------------------------------------===//

TEST(SynthesisPrintTest, FlattenedFigure3Reparses) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion RC = *resolveCriterion(A, paperExample("fig3a").Crit);
  SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
  PrintedSynthesis P = printSynthesizedSlice(A, S);
  ErrorOr<Analysis> Reparsed = Analysis::fromSource(P.Text);
  ASSERT_TRUE(Reparsed.hasValue())
      << (Reparsed.hasValue() ? "" : Reparsed.diags().str()) << "\n"
      << P.Text;
  EXPECT_GT(P.CriterionLine, 0u);
}

class SynthesisPrintProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SynthesisPrintProperty, FlattenedProgramReproducesBehaviour) {
  GenOptions Opts;
  Opts.Seed = GetParam() + 900;
  Opts.TargetStmts = 40;
  Opts.AllowGotos = (GetParam() % 2) == 1;
  std::string Source = generateProgram(Opts);
  Analysis A = analyzeOk(Source);
  if (!A.cfg().unreachableNodes().empty())
    GTEST_SKIP() << "program has dead code";

  std::mt19937_64 Rng(GetParam() * 104729 + 11);
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
    PrintedSynthesis P = printSynthesizedSlice(A, S);

    // The emitted text must be a valid, analyzable Mini-C program.
    ErrorOr<Analysis> Flat = Analysis::fromSource(P.Text);
    ASSERT_TRUE(Flat.hasValue())
        << (Flat.hasValue() ? "" : Flat.diags().str()) << "\n--- slice\n"
        << P.Text << "--- original\n" << Source;

    // Resolve the criterion in the flattened program by emitted line.
    ErrorOr<ResolvedCriterion> FlatRC =
        resolveCriterion(*Flat, Criterion(P.CriterionLine, Crit.Vars));
    ASSERT_TRUE(FlatRC.hasValue()) << P.Text;

    for (unsigned Trial = 0; Trial != 3; ++Trial) {
      ExecOptions Exec;
      unsigned Len = static_cast<unsigned>(Rng() % 6);
      for (unsigned I = 0; I != Len; ++I)
        Exec.Input.push_back(static_cast<int64_t>(Rng() % 21) - 10);
      ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Exec);
      if (!Orig.Completed)
        continue;
      // Run the flattened text as an ordinary program.
      ExecResult FlatRun =
          runOriginal(*Flat, FlatRC->Node, FlatRC->VarIds, Exec);
      ASSERT_TRUE(FlatRun.Completed) << P.Text;
      EXPECT_EQ(FlatRun.CriterionValues, Orig.CriterionValues)
          << "criterion line " << Crit.Line << "\n--- slice\n"
          << P.Text << "--- original\n" << Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisPrintProperty,
                         ::testing::Range(1u, 26u));

} // namespace
