//===- tests/PropertyTest.cpp - Randomized whole-pipeline properties ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Seeded random programs exercise the paper's claims end to end:
///
///  * behavioural soundness (Weiser's criterion) of every sound
///    algorithm, checked with the projection interpreter on random
///    inputs;
///  * Figure 7 == Ball–Horwitz (the paper's equivalence theorem);
///  * Figure 12 == Figure 7 on structured programs, with exactly one
///    traversal;
///  * Figure 13 ⊇ Figure 12 (conservative but still sound);
///  * structured programs contain no (postdominates, lexically-succeeds)
///    pair (Section 4, property 1), so one traversal always suffices;
///  * slices are monotone supersets of the conventional slice and
///    idempotent under re-slicing.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

#include <random>

using namespace jslice;

namespace {

struct Scenario {
  unsigned Seed;
  bool Gotos; // unstructured mode
};

/// Pretty parameter names: "structured_seed7" / "gotos_seed7".
std::string scenarioName(const ::testing::TestParamInfo<Scenario> &Info) {
  return std::string(Info.param.Gotos ? "gotos" : "structured") + "_seed" +
         std::to_string(Info.param.Seed);
}

class SliceProperty : public ::testing::TestWithParam<Scenario> {
protected:
  /// \p ForFigure12 generates without return statements and without
  /// switches — the class where Section 4's properties actually hold.
  /// Returns are multi-level exits and defeat property 2; C's
  /// fall-through switch smuggles an implicit jump past property 1
  /// (witnesses in FindingsTest.cpp).
  Analysis analyze(bool ForFigure12 = false) {
    GenOptions Opts;
    Opts.Seed = GetParam().Seed;
    Opts.TargetStmts = 45;
    Opts.AllowGotos = GetParam().Gotos;
    Opts.AllowReturn = !ForFigure12;
    Opts.AllowSwitch = !ForFigure12;
    Source = generateProgram(Opts);
    ErrorOr<Analysis> A = Analysis::fromSource(Source);
    EXPECT_TRUE(A.hasValue())
        << (A.hasValue() ? "" : A.diags().str()) << "\n"
        << Source;
    return std::move(*A);
  }

  /// The paper's guarantees assume no dead code (see DESIGN.md and
  /// Cfg::unreachableNodes). The generator avoids the trivial cases,
  /// but e.g. `if (c) break; else continue; S` still strands S; skip
  /// those rare programs rather than assert vacuous properties.
  bool skipIfUnreachableCode(const Analysis &A) {
    return !A.cfg().unreachableNodes().empty();
  }

  /// Checks Weiser's criterion behaviourally: for every write criterion
  /// and a handful of random inputs, the slice reproduces the original
  /// sequence of criterion values. Non-terminating runs are skipped.
  void expectBehaviourPreserved(const Analysis &A, SliceAlgorithm Algorithm) {
    std::mt19937_64 Rng(GetParam().Seed * 7919 + 13);
    for (const Criterion &Crit : reachableWriteCriteria(A)) {
      ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Crit);
      ASSERT_TRUE(RC.hasValue()) << RC.diags().str();
      SliceResult R = computeSlice(A, *RC, Algorithm);
      std::set<unsigned> Kept = R.Nodes;
      Kept.insert(A.cfg().exit());

      for (unsigned Trial = 0; Trial != 4; ++Trial) {
        ExecOptions Opts;
        unsigned Len = static_cast<unsigned>(Rng() % 6);
        for (unsigned I = 0; I != Len; ++I)
          Opts.Input.push_back(static_cast<int64_t>(Rng() % 21) - 10);

        ExecResult Orig = runOriginal(A, RC->Node, RC->VarIds, Opts);
        if (!Orig.Completed)
          continue; // Original diverges; Weiser's criterion is vacuous.
        ExecResult Sliced =
            runProjection(A, Kept, RC->Node, RC->VarIds, Opts);
        ASSERT_TRUE(Sliced.Completed)
            << algorithmName(Algorithm) << " slice diverges\n"
            << Source;
        EXPECT_EQ(Sliced.CriterionValues, Orig.CriterionValues)
            << algorithmName(Algorithm) << " slice changes behaviour\n"
            << "criterion line " << Crit.Line << "\n"
            << Source;
      }
    }
  }

  std::string Source;
};

TEST_P(SliceProperty, AgrawalSliceIsBehaviourPreserving) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  expectBehaviourPreserved(A, SliceAlgorithm::Agrawal);
}

TEST_P(SliceProperty, BallHorwitzSliceIsBehaviourPreserving) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  expectBehaviourPreserved(A, SliceAlgorithm::BallHorwitz);
}

TEST_P(SliceProperty, LyleSliceIsBehaviourPreserving) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  expectBehaviourPreserved(A, SliceAlgorithm::Lyle);
}

TEST_P(SliceProperty, StructuredAndConservativeAreBehaviourPreserving) {
  Analysis A = analyze(/*ForFigure12=*/true);
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  if (!isStructuredProgram(A.cfg(), A.lst()))
    GTEST_SKIP() << "Figures 12/13 are defined for structured programs";
  expectBehaviourPreserved(A, SliceAlgorithm::Structured);
  expectBehaviourPreserved(A, SliceAlgorithm::Conservative);
}

TEST_P(SliceProperty, AgrawalEqualsBallHorwitz) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SliceResult Ours = sliceAgrawal(A, RC);
    SliceResult Baseline = sliceBallHorwitz(A, RC);
    EXPECT_EQ(Ours.Nodes, Baseline.Nodes)
        << "criterion line " << Crit.Line << "\n"
        << Source;
  }
}

TEST_P(SliceProperty, LstDrivenTraversalGivesSameSlice) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    EXPECT_EQ(sliceAgrawal(A, RC, TraversalTree::PostDominator).Nodes,
              sliceAgrawal(A, RC, TraversalTree::LexicalSuccessor).Nodes)
        << Source;
  }
}

TEST_P(SliceProperty, StructuredProgramProperties) {
  Analysis A = analyze(/*ForFigure12=*/true);
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  if (!isStructuredProgram(A.cfg(), A.lst()))
    GTEST_SKIP() << "needs a structured program";

  // Section 4, property 1: no (N1, N2) with N1 postdominating N2 while
  // N2 lexically succeeds N1.
  for (unsigned N1 = 0; N1 != A.cfg().numNodes(); ++N1) {
    if (!A.pdt().isReachable(N1) || !A.lst().inTree(N1))
      continue;
    for (unsigned N2 = 0; N2 != A.cfg().numNodes(); ++N2) {
      if (N1 == N2 || !A.pdt().isReachable(N2) || !A.lst().inTree(N2))
        continue;
      EXPECT_FALSE(A.pdt().dominates(N1, N2) &&
                   A.lst().isLexicalSuccessorOf(N2, N1))
          << "nodes " << N1 << ", " << N2 << "\n"
          << Source;
    }
  }

  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SliceResult General = sliceAgrawal(A, RC);
    SliceResult Single = sliceStructured(A, RC);
    SliceResult Conservative = sliceConservative(A, RC);

    // Figure 12 == Figure 7 on structured programs.
    EXPECT_EQ(Single.Nodes, General.Nodes) << Source;
    // One productive traversal suffices.
    EXPECT_LE(General.ProductiveTraversals, 1u) << Source;
    // Figure 13 is a superset of Figure 12.
    for (unsigned Node : Single.Nodes)
      EXPECT_TRUE(Conservative.contains(Node)) << Source;
  }
}

TEST_P(SliceProperty, SlicesContainConventionalAndCriterion) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SliceResult Conv = sliceConventional(A, RC);
    for (SliceAlgorithm Algorithm :
         {SliceAlgorithm::Agrawal, SliceAlgorithm::Conservative,
          SliceAlgorithm::BallHorwitz, SliceAlgorithm::Lyle,
          SliceAlgorithm::Gallagher, SliceAlgorithm::JiangZhouRobson}) {
      SliceResult R = computeSlice(A, RC, Algorithm);
      EXPECT_TRUE(R.contains(RC.Node)) << algorithmName(Algorithm);
      for (unsigned Node : Conv.Nodes)
        EXPECT_TRUE(R.contains(Node))
            << algorithmName(Algorithm) << " dropped a conventional node\n"
            << Source;
    }
  }
}

TEST_P(SliceProperty, AgrawalIsIdempotent) {
  Analysis A = analyze();
  if (skipIfUnreachableCode(A))
    GTEST_SKIP() << "program has dead code";
  for (const Criterion &Crit : reachableWriteCriteria(A)) {
    ResolvedCriterion RC = *resolveCriterion(A, Crit);
    SliceResult First = sliceAgrawal(A, RC);
    // Re-running with the first slice's nodes as extra seeds must not
    // grow the slice: it is already dependence- and jump-closed.
    ResolvedCriterion Wider = RC;
    Wider.Seeds.assign(First.Nodes.begin(), First.Nodes.end());
    SliceResult Second = sliceAgrawal(A, Wider);
    EXPECT_EQ(First.Nodes, Second.Nodes) << Source;
  }
}

TEST_P(SliceProperty, BatchEngineMatchesSingleShotSlicers) {
  Analysis A = analyze();
  BatchSlicer Batch(A);
  // Every algorithm with a cache-backed implementation, over every
  // reachable write criterion: the batch engine must reproduce the
  // single-shot slicer bit for bit (nodes, labels, counters).
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Conventional, SliceAlgorithm::Agrawal,
        SliceAlgorithm::AgrawalLst, SliceAlgorithm::Structured,
        SliceAlgorithm::Conservative, SliceAlgorithm::BallHorwitz,
        SliceAlgorithm::Lyle, SliceAlgorithm::Gallagher,
        SliceAlgorithm::JiangZhouRobson}) {
    for (const Criterion &Crit : reachableWriteCriteria(A)) {
      ResolvedCriterion RC = *resolveCriterion(A, Crit);
      SliceResult Single = computeSlice(A, RC, Algorithm);
      SliceResult Batched = Batch.slice(RC, Algorithm);
      EXPECT_EQ(Batched.Nodes, Single.Nodes)
          << algorithmName(Algorithm) << " line " << Crit.Line << "\n"
          << Source;
      EXPECT_EQ(Batched.ReassociatedLabels, Single.ReassociatedLabels)
          << algorithmName(Algorithm) << " line " << Crit.Line << "\n"
          << Source;
      EXPECT_EQ(Batched.TraversalAdditions, Single.TraversalAdditions)
          << algorithmName(Algorithm) << " line " << Crit.Line << "\n"
          << Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structured, SliceProperty,
    ::testing::ValuesIn([] {
      std::vector<Scenario> Out;
      for (unsigned Seed = 1; Seed <= 30; ++Seed)
        Out.push_back({Seed, false});
      return Out;
    }()),
    scenarioName);

INSTANTIATE_TEST_SUITE_P(
    Unstructured, SliceProperty,
    ::testing::ValuesIn([] {
      std::vector<Scenario> Out;
      for (unsigned Seed = 101; Seed <= 130; ++Seed)
        Out.push_back({Seed, true});
      return Out;
    }()),
    scenarioName);

} // namespace
