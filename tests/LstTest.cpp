//===- tests/LstTest.cpp - Lexical successor tree unit tests ------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "cfg/LexicalSuccessorTree.h"
#include "corpus/PaperPrograms.h"
#include "gen/ProgramGenerator.h"
#include "graph/Dominators.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

struct Built {
  std::unique_ptr<Program> Prog;
  Cfg C;
  LexicalSuccessorTree Lst;
};

Built buildOk(const std::string &Source) {
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source);
  EXPECT_TRUE(Prog.hasValue())
      << (Prog.hasValue() ? "" : Prog.diags().str());
  ErrorOr<Cfg> C = Cfg::build(**Prog);
  EXPECT_TRUE(C.hasValue()) << (C.hasValue() ? "" : C.diags().str());
  LexicalSuccessorTree Lst = buildLexicalSuccessorTree(*C);
  return {std::move(*Prog), std::move(*C), std::move(Lst)};
}

int parentLineOf(const Built &B, unsigned Line) {
  unsigned Node = B.C.nodesOnLine(Line).front();
  int Parent = B.Lst.parent(Node);
  if (Parent < 0)
    return -1;
  const Stmt *S = B.C.node(static_cast<unsigned>(Parent)).S;
  return S ? static_cast<int>(S->getLoc().Line) : 0; // 0 = exit
}

TEST(LstTest, StraightLineChainsToExit) {
  Built B = buildOk("x = 1;\ny = 2;\nwrite(y);\n");
  EXPECT_EQ(parentLineOf(B, 1), 2);
  EXPECT_EQ(parentLineOf(B, 2), 3);
  EXPECT_EQ(parentLineOf(B, 3), 0);
  EXPECT_EQ(B.Lst.root(), B.C.exit());
}

TEST(LstTest, LastBodyStatementFallsToLoopPredicate) {
  Built B = buildOk("while (x > 0) {\nx = x - 1;\nwrite(x);\n}\nwrite(9);\n");
  EXPECT_EQ(parentLineOf(B, 2), 3);
  EXPECT_EQ(parentLineOf(B, 3), 1) << "deleting the last body statement "
                                      "sends control back to the predicate";
  EXPECT_EQ(parentLineOf(B, 1), 5) << "deleting the loop skips past it";
}

TEST(LstTest, ThenBranchFallsPastTheIf) {
  Built B = buildOk("if (x > 0) {\ny = 1;\nz = 2;\n} else {\nw = 3;\n}\n"
                    "write(y);\n");
  EXPECT_EQ(parentLineOf(B, 2), 3);
  EXPECT_EQ(parentLineOf(B, 3), 7);
  EXPECT_EQ(parentLineOf(B, 5), 7);
  EXPECT_EQ(parentLineOf(B, 1), 7);
}

TEST(LstTest, ForClausesFallIntoThePredicate) {
  Built B = buildOk("for (i = 0; i < 3; i = i + 1) {\nwrite(i);\n}\n"
                    "write(9);\n");
  const auto *For = cast<ForStmt>(B.Prog->topLevel()[0]);
  unsigned Init = B.C.nodeOf(For->getInit());
  unsigned Cond = B.C.nodeOf(For);
  unsigned Step = B.C.nodeOf(For->getStep());
  unsigned Body = B.C.nodesOnLine(2).front();
  EXPECT_EQ(B.Lst.parent(Init), static_cast<int>(Cond));
  EXPECT_EQ(B.Lst.parent(Step), static_cast<int>(Cond));
  EXPECT_EQ(B.Lst.parent(Body), static_cast<int>(Step))
      << "last body statement falls into the step";
}

TEST(LstTest, SwitchClausesFallIntoNextClause) {
  Built B = buildOk("switch (x) { case 1:\ny = 1;\ncase 2:\ny = 2;\n}\n"
                    "write(y);\n");
  EXPECT_EQ(parentLineOf(B, 2), 4) << "clause falls into next clause body";
  EXPECT_EQ(parentLineOf(B, 4), 6) << "last clause falls past the switch";
  EXPECT_EQ(parentLineOf(B, 1), 6);
}

TEST(LstTest, MatchesPaperFigure4) {
  // Figure 4-d: the LST of the flat goto program 3-a is the textual
  // chain 1 -> 2 -> ... -> 15 -> exit (top-level statements only).
  Built B = buildOk(paperExample("fig3a").Source);
  for (unsigned Line = 1; Line < 15; ++Line) {
    unsigned Node = B.C.nodesOnLine(Line).front();
    int Parent = B.Lst.parent(Node);
    ASSERT_GE(Parent, 0);
    const Stmt *S = B.C.node(static_cast<unsigned>(Parent)).S;
    ASSERT_NE(S, nullptr);
    EXPECT_EQ(S->getLoc().Line, Line + 1) << "line " << Line;
  }
}

TEST(LstTest, MatchesPaperFigure6ContinueProgram) {
  Built B = buildOk(paperExample("fig5a").Source);
  // Key shape assertions from Figure 6-d.
  EXPECT_EQ(parentLineOf(B, 7), 8)
      << "continue on 7 lexically falls into line 8";
  EXPECT_EQ(parentLineOf(B, 11), 12);
  EXPECT_EQ(parentLineOf(B, 12), 3) << "last body statement falls back to "
                                       "the while predicate";
  EXPECT_EQ(parentLineOf(B, 3), 13);
}

TEST(LstTest, EntryIsOutsideTheTree) {
  Built B = buildOk("write(1);\n");
  EXPECT_FALSE(B.Lst.inTree(B.C.entry()));
  EXPECT_TRUE(B.Lst.inTree(B.C.exit()));
}

TEST(LstTest, LexicalSuccessorQueryIsReflexiveTransitive) {
  Built B = buildOk("x = 1;\ny = 2;\nwrite(y);\n");
  unsigned N1 = B.C.nodesOnLine(1).front();
  unsigned N3 = B.C.nodesOnLine(3).front();
  EXPECT_TRUE(B.Lst.isLexicalSuccessorOf(N1, N1));
  EXPECT_TRUE(B.Lst.isLexicalSuccessorOf(N3, N1));
  EXPECT_FALSE(B.Lst.isLexicalSuccessorOf(N1, N3));
}

TEST(LstTest, StructuredJumpClassification) {
  // break/continue/return are structured; backward gotos are not;
  // forward gotos to lexical successors are.
  Built B = buildOk("while (x > 0) {\nbreak;\n}\nreturn;\n");
  unsigned Break = B.C.nodesOnLine(2).front();
  unsigned Return = B.C.nodesOnLine(4).front();
  EXPECT_TRUE(isStructuredJump(B.C, B.Lst, Break));
  EXPECT_TRUE(isStructuredJump(B.C, B.Lst, Return));
  EXPECT_TRUE(isStructuredProgram(B.C, B.Lst));

  Built Back = buildOk("L: x = x + 1;\nif (x < 3) goto L;\nwrite(x);\n");
  bool FoundUnstructured = false;
  for (unsigned Node = 0; Node != Back.C.numNodes(); ++Node)
    if (Back.C.node(Node).isJump() &&
        !isStructuredJump(Back.C, Back.Lst, Node))
      FoundUnstructured = true;
  EXPECT_TRUE(FoundUnstructured);
  EXPECT_FALSE(isStructuredProgram(Back.C, Back.Lst));
}

TEST(LstTest, Figure16GotosAreStructured) {
  Built B = buildOk(paperExample("fig16a").Source);
  EXPECT_TRUE(isStructuredProgram(B.C, B.Lst))
      << "both gotos jump forward to lexical successors (Section 4)";
}

/// The paper, Section 3: for programs without jump statements the LST
/// and the postdominator tree coincide.
class LstEqualsPdtOnJumpFree : public ::testing::TestWithParam<unsigned> {};

TEST_P(LstEqualsPdtOnJumpFree, Holds) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 40;
  Opts.AllowGotos = false;
  Opts.AllowStructuredJumps = false; // jump-free
  Opts.AllowSwitch = false;          // fall-through acts like a jump
  std::string Source = generateProgram(Opts);
  Built B = buildOk(Source);
  DomTree Pdt = computePostDominators(B.C.graph(), B.C.exit());
  for (unsigned Node = 0; Node != B.C.numNodes(); ++Node) {
    if (Node == B.C.entry() || Node == B.C.exit())
      continue;
    EXPECT_EQ(B.Lst.parent(Node), Pdt.idom(Node))
        << "seed " << GetParam() << " node " << Node << "\n"
        << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LstEqualsPdtOnJumpFree,
                         ::testing::Range(1u, 26u));

} // namespace
