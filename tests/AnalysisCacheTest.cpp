//===- tests/AnalysisCacheTest.cpp - Analysis-cache unit tests -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The content-addressed analysis cache (service/AnalysisCache.h):
/// canonical-key determinism across both generator dialects, the
/// single-flight state machine (exactly one promotion when a leader
/// fails over waiting followers), eviction racing an in-flight hit,
/// quarantine outranking everything, and the self-audit's
/// mismatch-invalidation path driven end to end through
/// executeSliceRequest.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "service/SandboxWorker.h"
#include "slicer/Criterion.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace jslice;

namespace {

Budget bigBudget() {
  Budget B;
  B.MaxSteps = 50000000;
  B.DeadlineMs = 30000;
  return B;
}

std::string keyOf(const std::string &Source) {
  ResourceGuard G(bigBudget());
  std::optional<std::string> K = canonicalProgramKey(Source, G);
  EXPECT_TRUE(K.has_value()) << Source;
  return K ? *K : std::string();
}

std::shared_ptr<AnalysisArtifact> makeArtifact(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source, bigBudget());
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  auto Art = std::make_shared<AnalysisArtifact>(std::move(*A));
  EXPECT_TRUE(Art->BS.closures().valid());
  Art->CostBytes = estimateArtifactCost(*Art, Source);
  return Art;
}

auto farDeadline() {
  return std::chrono::steady_clock::now() + std::chrono::seconds(20);
}

//===----------------------------------------------------------------------===//
// Canonical keys
//===----------------------------------------------------------------------===//

TEST(CanonicalKeyTest, StableAcrossBothDialectsAndRuns) {
  for (bool Gotos : {false, true}) {
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      GenOptions Opts;
      Opts.Seed = Seed;
      Opts.TargetStmts = 40;
      Opts.AllowGotos = Gotos;
      std::string Source = generateProgram(Opts);
      std::string K1 = keyOf(Source);
      std::string K2 = keyOf(Source);
      ASSERT_FALSE(K1.empty());
      EXPECT_EQ(K1, K2) << "seed " << Seed << " gotos " << Gotos;
    }
  }
}

TEST(CanonicalKeyTest, IgnoresIntraLineWhitespace) {
  // Same statements on the same lines, reformatted: one artifact.
  std::string A = "read(a);\nb = a + 1;\nwrite(b);\n";
  std::string B = "read( a ) ;\n  b   =a+ 1 ;\n\twrite(b);\n";
  EXPECT_EQ(keyOf(A), keyOf(B));
}

TEST(CanonicalKeyTest, LineLayoutIsPartOfTheKey) {
  // A blank line shifts every later statement's line number; criteria
  // are (line, vars), so these must NOT share an artifact.
  std::string A = "read(a);\nwrite(a);\n";
  std::string B = "read(a);\n\nwrite(a);\n";
  EXPECT_NE(keyOf(A), keyOf(B));
}

TEST(CanonicalKeyTest, UnparseableProgramHasNoKey) {
  ResourceGuard G(bigBudget());
  EXPECT_FALSE(canonicalProgramKey("x = ;", G).has_value());
}

TEST(CanonicalKeyTest, RawKeyIsContentAddressed) {
  EXPECT_EQ(rawProgramKey("abc"), rawProgramKey("abc"));
  EXPECT_NE(rawProgramKey("abc"), rawProgramKey("abd"));
  // Length is part of the key material, so a prefix never aliases.
  EXPECT_NE(rawProgramKey("a"), rawProgramKey("a\0a" + std::string(1, 0)));
}

//===----------------------------------------------------------------------===//
// Single flight
//===----------------------------------------------------------------------===//

TEST(AnalysisCacheTest, MissThenPublishThenHit) {
  AnalysisCache C{CacheOptions{}};
  const std::string Src = "read(a);\nwrite(a);\n";
  const std::string K = keyOf(Src);

  AnalysisCache::LookupResult L = C.lookup(K, farDeadline());
  ASSERT_EQ(L.K, AnalysisCache::Outcome::MustBuild);
  C.publish(K, makeArtifact(Src));

  L = C.lookup(K, farDeadline());
  ASSERT_EQ(L.K, AnalysisCache::Outcome::Hit);
  ASSERT_TRUE(L.Artifact);

  CacheStats S = C.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Inserts, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_GT(S.Bytes, 0u);
}

TEST(AnalysisCacheTest, LeaderFailurePromotesExactlyOneOfTenFollowers) {
  AnalysisCache C{CacheOptions{}};
  const std::string Src = "read(a);\nwrite(a);\n";
  const std::string K = keyOf(Src);

  // Become the leader, then park 10 followers on the slot.
  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);

  std::atomic<int> Promoted{0}, Hits{0}, Other{0};
  std::vector<std::thread> Followers;
  for (int I = 0; I < 10; ++I)
    Followers.emplace_back([&] {
      AnalysisCache::LookupResult L = C.lookup(K, farDeadline());
      if (L.K == AnalysisCache::Outcome::MustBuild) {
        ++Promoted;
        // The promoted follower is now the leader; it must finish the
        // build so the other nine get their artifact.
        C.publish(K, makeArtifact(Src));
      } else if (L.K == AnalysisCache::Outcome::Hit) {
        ++Hits;
      } else {
        ++Other;
      }
    });

  // Wait until every follower is actually coalesced on the slot, so
  // buildFailed races against real waiters, not a startup gap.
  while (C.stats().Coalesced < 10)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  C.buildFailed(K);

  for (std::thread &T : Followers)
    T.join();

  EXPECT_EQ(Promoted.load(), 1);
  EXPECT_EQ(Hits.load(), 9);
  EXPECT_EQ(Other.load(), 0);
  CacheStats S = C.stats();
  EXPECT_EQ(S.Promotions, 1u);
  EXPECT_EQ(S.BuildFailures, 1u);
  EXPECT_EQ(S.Coalesced, 10u);
}

TEST(AnalysisCacheTest, RepeatedFailuresBackTheKeyOff) {
  CacheOptions Opts;
  Opts.MaxBuildFailures = 2;
  Opts.FailureBackoffLookups = 4;
  AnalysisCache C{Opts};
  const std::string K = "k-backoff";

  // Two failed builds with no waiters: the key enters backoff.
  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
  C.buildFailed(K);
  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
  C.buildFailed(K);

  // During backoff every lookup bypasses (serves cache-less) instead
  // of re-building — a starved budget cannot wedge a hot program.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::Bypass);
  // Past the backoff window the key may try again.
  EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
}

TEST(AnalysisCacheTest, CoalesceTimeoutBypassesAndUnwedgesTheKey) {
  AnalysisCache C{CacheOptions{}};
  const std::string K = "k-timeout";
  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);

  // A follower whose deadline passes while the leader is still
  // building serves solo.
  auto Soon = std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_EQ(C.lookup(K, Soon).K, AnalysisCache::Outcome::Bypass);
  EXPECT_EQ(C.stats().CoalesceTimeouts, 1u);

  // Leader fails with no remaining waiters: next lookup retries
  // immediately rather than waiting on a dead slot.
  C.buildFailed(K);
  EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
}

//===----------------------------------------------------------------------===//
// Eviction
//===----------------------------------------------------------------------===//

TEST(AnalysisCacheTest, CapacityEvictsLeastRecentlyUsed) {
  CacheOptions Opts;
  Opts.MaxEntries = 2;
  AnalysisCache C{Opts};
  const std::string S1 = "read(a);\nwrite(a);\n";
  const std::string S2 = "read(b);\nwrite(b);\n";
  const std::string S3 = "read(c);\nwrite(c);\n";
  const std::string K1 = keyOf(S1), K2 = keyOf(S2), K3 = keyOf(S3);

  for (const auto &[K, S] : {std::pair{K1, S1}, {K2, S2}}) {
    ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
    C.publish(K, makeArtifact(S));
  }
  // Touch K1 so K2 is the LRU victim.
  ASSERT_EQ(C.lookup(K1, farDeadline()).K, AnalysisCache::Outcome::Hit);

  ASSERT_EQ(C.lookup(K3, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
  C.publish(K3, makeArtifact(S3));

  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_EQ(C.stats().Entries, 2u);
  EXPECT_EQ(C.lookup(K1, farDeadline()).K, AnalysisCache::Outcome::Hit);
  EXPECT_EQ(C.lookup(K2, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
}

TEST(AnalysisCacheTest, EvictionRacingAHitCannotInvalidateTheReader) {
  AnalysisCache C{CacheOptions{}};
  const std::string Src = "read(a);\nb = a + 1;\nwrite(b);\n";
  const std::string K = keyOf(Src);
  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
  C.publish(K, makeArtifact(Src));

  AnalysisCache::LookupResult L = C.lookup(K, farDeadline());
  ASSERT_EQ(L.K, AnalysisCache::Outcome::Hit);
  std::shared_ptr<const AnalysisArtifact> Reader = L.Artifact;

  // Watermark eviction drops the entry while the reader still holds
  // the artifact.
  EXPECT_EQ(C.evictToward(0), 1u);
  EXPECT_EQ(C.stats().WatermarkEvictions, 1u);
  EXPECT_EQ(C.stats().Entries, 0u);
  EXPECT_EQ(C.bytes(), 0u);

  // The shared_ptr keeps the artifact alive; a slice through it after
  // the eviction matches a fresh computation exactly.
  ResourceGuard G(bigBudget());
  ErrorOr<ResolvedCriterion> RC =
      resolveCriterion(Reader->A, Criterion(3, {"b"}));
  ASSERT_TRUE(RC.hasValue());
  std::optional<SliceResult> S =
      Reader->BS.sliceShared(*RC, SliceAlgorithm::Agrawal, G);
  ASSERT_TRUE(S.has_value());
  ASSERT_FALSE(G.exhausted());

  ErrorOr<Analysis> Fresh = Analysis::fromSource(Src, bigBudget());
  ASSERT_TRUE(Fresh.hasValue());
  ErrorOr<ResolvedCriterion> FreshRC =
      resolveCriterion(*Fresh, Criterion(3, {"b"}));
  ASSERT_TRUE(FreshRC.hasValue());
  SliceResult Expect = computeSlice(*Fresh, *FreshRC, SliceAlgorithm::Agrawal);
  EXPECT_EQ(S->lineSet(Reader->A.cfg()), Expect.lineSet(Fresh->cfg()));
}

//===----------------------------------------------------------------------===//
// Quarantine
//===----------------------------------------------------------------------===//

TEST(AnalysisCacheTest, QuarantineOutranksPublishAndSurvivesEviction) {
  AnalysisCache C{CacheOptions{}};
  const std::string Src = "read(a);\nwrite(a);\n";
  const std::string K = keyOf(Src);

  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
  C.publish(K, makeArtifact(Src));
  C.quarantine(K);

  EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::Quarantined);
  // A late publish (say, a promoted follower finishing after the
  // crash verdict landed) must not resurrect the key.
  C.publish(K, makeArtifact(Src));
  EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::Quarantined);
  // Watermark pressure cannot flush a quarantine record.
  C.evictToward(0);
  EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::Quarantined);
  EXPECT_EQ(C.stats().Poisoned, 3u);
}

TEST(AnalysisCacheTest, QuarantinedKeyIsRefusedThroughExecute) {
  CacheOptions Opts;
  AnalysisCache C{Opts};
  const std::string Src = "read(a);\nwrite(a);\n";
  C.quarantine(keyOf(Src));

  ExecConfig Cfg;
  Cfg.DefaultBudget = bigBudget();
  Cfg.Cache = Opts;
  ServiceRequest R;
  R.Id = "q1";
  R.Program = Src;
  R.Line = 2;
  ServiceResponse Resp =
      executeSliceRequest(R, Cfg, nullptr, nullptr, &C);
  EXPECT_EQ(Resp.Status, ResponseStatus::Poisoned);
}

//===----------------------------------------------------------------------===//
// Execute integration: hit parity and the audit
//===----------------------------------------------------------------------===//

TEST(AnalysisCacheTest, SecondRequestIsServedFromCacheBitIdentically) {
  CacheOptions Opts;
  AnalysisCache C{Opts};
  ExecConfig Cfg;
  Cfg.DefaultBudget = bigBudget();
  Cfg.Cache = Opts;

  GenOptions G;
  G.Seed = 7;
  G.TargetStmts = 60;
  G.AllowGotos = true;
  ServiceRequest R;
  R.Id = "c1";
  R.Program = generateProgram(G);
  R.Line = 5;

  ServiceResponse First = executeSliceRequest(R, Cfg, nullptr, nullptr, &C);
  R.Id = "c2";
  ServiceResponse Second = executeSliceRequest(R, Cfg, nullptr, nullptr, &C);

  ASSERT_EQ(First.Status, Second.Status);
  if (First.Status == ResponseStatus::Ok) {
    EXPECT_FALSE(First.FromCache);
    EXPECT_TRUE(Second.FromCache);
    EXPECT_EQ(First.Lines, Second.Lines);
    EXPECT_EQ(First.ServedTier, Second.ServedTier);
  }
  EXPECT_GE(C.stats().Hits + C.stats().Misses, 2u);
}

TEST(AnalysisCacheTest, AuditMismatchInvalidatesAndServesFresh) {
  // Plant a WRONG artifact under P1's key — P2 differs only in which
  // input feeds c, so the criterion resolves in both but the slices
  // differ. This simulates the one corruption the key cannot prevent
  // (a hash collision, a bug): the audit must catch it, invalidate,
  // and serve the freshly recomputed slice.
  const std::string P1 = "read(a);\nread(b);\nc = a;\nwrite(c);\n";
  const std::string P2 = "read(a);\nread(b);\nc = b;\nwrite(c);\n";
  ASSERT_NE(keyOf(P1), keyOf(P2));

  CacheOptions Opts;
  Opts.AuditEvery = 1; // Audit every hit.
  AnalysisCache C{Opts};
  const std::string K = keyOf(P1);
  ASSERT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
  C.publish(K, makeArtifact(P2)); // The lie.

  ExecConfig Cfg;
  Cfg.DefaultBudget = bigBudget();
  Cfg.Cache = Opts;
  ServiceRequest R;
  R.Id = "a1";
  R.Program = P1;
  R.Line = 4;
  R.Vars = {"c"};

  ServiceResponse Resp = executeSliceRequest(R, Cfg, nullptr, nullptr, &C);
  ASSERT_EQ(Resp.Status, ResponseStatus::Ok);
  EXPECT_TRUE(Resp.FromCache);
  EXPECT_TRUE(Resp.Audited);

  // The served lines are the fresh truth (line 1 feeds c via a; line
  // 2 does not), not the planted artifact's answer.
  ErrorOr<Analysis> A = Analysis::fromSource(P1, bigBudget());
  ASSERT_TRUE(A.hasValue());
  ErrorOr<ResolvedCriterion> RC = resolveCriterion(*A, Criterion(4, {"c"}));
  ASSERT_TRUE(RC.hasValue());
  EXPECT_EQ(Resp.Lines,
            computeSlice(*A, *RC, SliceAlgorithm::Agrawal).lineSet(A->cfg()));

  CacheStats S = C.stats();
  EXPECT_EQ(S.Audits, 1u);
  EXPECT_EQ(S.AuditMismatches, 1u);
  // The poisoned entry is gone: the next lookup rebuilds.
  EXPECT_EQ(C.lookup(K, farDeadline()).K, AnalysisCache::Outcome::MustBuild);
}

TEST(AnalysisCacheTest, CleanAuditLeavesTheEntryAlone) {
  CacheOptions Opts;
  Opts.AuditEvery = 1;
  AnalysisCache C{Opts};
  ExecConfig Cfg;
  Cfg.DefaultBudget = bigBudget();
  Cfg.Cache = Opts;

  ServiceRequest R;
  R.Id = "a1";
  R.Program = "read(a);\nb = a + 1;\nwrite(b);\n";
  R.Line = 3;
  ServiceResponse First = executeSliceRequest(R, Cfg, nullptr, nullptr, &C);
  ASSERT_EQ(First.Status, ResponseStatus::Ok);
  R.Id = "a2";
  ServiceResponse Second = executeSliceRequest(R, Cfg, nullptr, nullptr, &C);
  ASSERT_EQ(Second.Status, ResponseStatus::Ok);
  EXPECT_TRUE(Second.FromCache);
  EXPECT_TRUE(Second.Audited);
  EXPECT_EQ(First.Lines, Second.Lines);

  CacheStats S = C.stats();
  EXPECT_EQ(S.Audits, 1u);
  EXPECT_EQ(S.AuditMismatches, 0u);
  EXPECT_EQ(S.Entries, 1u);
}

//===----------------------------------------------------------------------===//
// Stats round trip
//===----------------------------------------------------------------------===//

TEST(CacheStatsTest, JsonRoundTripsAndAccumulates) {
  CacheStats S;
  S.Hits = 3;
  S.Misses = 2;
  S.Coalesced = 1;
  S.Promotions = 4;
  S.Evictions = 5;
  S.WatermarkEvictions = 2;
  S.Poisoned = 7;
  S.Audits = 8;
  S.AuditMismatches = 1;
  S.Entries = 9;
  S.Bytes = 12345;

  std::optional<CacheStats> Back = CacheStats::fromJson(S.toJson());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Hits, 3u);
  EXPECT_EQ(Back->WatermarkEvictions, 2u);
  EXPECT_EQ(Back->Bytes, 12345u);

  CacheStats Sum;
  Sum.add(*Back);
  Sum.add(*Back);
  EXPECT_EQ(Sum.Hits, 6u);
  EXPECT_EQ(Sum.Entries, 18u);

  EXPECT_FALSE(CacheStats::fromJson(JsonValue(42)).has_value());
}

} // namespace
