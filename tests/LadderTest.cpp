//===- tests/LadderTest.cpp - Degradation-ladder soundness --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The service's precision-degradation ladder may only ever trade
/// precision, never soundness: whatever tier serves, the slice must
/// still project the program's behaviour at the criterion. Line-set
/// supersets are NOT a sufficient check — this repo's Finding 2 shows
/// Figure 13 dropping a `return` the criterion needs (a bigger-looking
/// slice with the wrong behaviour), so every degraded serve here is
/// validated the strong way: the interpreter runs the original and the
/// projected program and must observe the same criterion values.
///
/// Coverage: every paper figure (forced onto a degraded rung by fault
/// injection), a 100-seed generator sweep across both dialects, the
/// Finding-2 gating of the Figure-13 rung, and the budget-window
/// behaviour that makes degradation actually reachable (a cheaper tier
/// serving under the very step budget the requested tier overran).
///
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "gen/ProgramGenerator.h"
#include "interp/Interpreter.h"
#include "service/Ladder.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

/// Deterministic interpreter inputs (shapes mirror the stress harness).
std::vector<std::vector<int64_t>> testInputs() {
  return {{}, {1}, {3, -2}, {0, 5, -7, 2}, {-1, -1, 4, 9, 10}};
}

/// The strong soundness check: the slice's behavioural projection must
/// reproduce the original's criterion values on every input where the
/// original terminates. Returns false only on a genuine divergence.
::testing::AssertionResult projectionSound(const LadderResult &Res,
                                           const Criterion &Crit) {
  if (!Res.Ok || !Res.A)
    return ::testing::AssertionFailure() << "ladder did not serve";
  const Analysis &A = *Res.A;
  if (!A.cfg().unreachableNodes().empty())
    return ::testing::AssertionSuccess(); // Paper assumes no dead code.
  ErrorOr<ResolvedCriterion> RC = resolveCriterion(A, Crit);
  if (!RC)
    return ::testing::AssertionFailure()
           << "criterion no longer resolves: " << RC.diags().str();
  std::set<unsigned> Kept = Res.Result.Nodes;
  Kept.insert(A.cfg().exit());

  for (const std::vector<int64_t> &Input : testInputs()) {
    ExecOptions Exec;
    Exec.Input = Input;
    Exec.MaxSteps = 100000;
    ExecResult Orig = runOriginal(A, RC->Node, RC->VarIds, Exec);
    if (!Orig.Completed)
      continue;
    ExecResult Sliced = runProjection(A, Kept, RC->Node, RC->VarIds, Exec);
    if (!Sliced.Completed || Sliced.CriterionValues != Orig.CriterionValues)
      return ::testing::AssertionFailure()
             << "served tier " << algorithmName(Res.Served)
             << (Res.Degraded ? " (degraded)" : "")
             << " diverges at line " << Crit.Line;
  }
  return ::testing::AssertionSuccess();
}

/// A goto-dense program whose Figure-7 fixpoint iterates enough that
/// its step cost clearly exceeds Lyle's single pass — the shape that
/// opens a budget window where only a degraded tier can serve.
std::string gotoMesh(unsigned N) {
  std::string Out = "read(x);\ns = 0;\n";
  for (unsigned I = 0; I != N; ++I) {
    Out += "L" + std::to_string(I) + ": s = s + x;\n";
    Out += "if (s > " + std::to_string(I) + ") goto L" +
           std::to_string((I * 7 + 3) % N) + ";\n";
  }
  Out += "Lend: write(s);\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Tier sequencing and eligibility
//===----------------------------------------------------------------------===//

TEST(LadderTiersTest, PreciseRequestGetsBothFallbacks) {
  std::vector<SliceAlgorithm> Tiers = ladderTiers(SliceAlgorithm::Agrawal);
  ASSERT_EQ(Tiers.size(), 3u);
  EXPECT_EQ(Tiers[0], SliceAlgorithm::Agrawal);
  EXPECT_EQ(Tiers[1], SliceAlgorithm::Conservative);
  EXPECT_EQ(Tiers[2], SliceAlgorithm::Lyle);
}

TEST(LadderTiersTest, CheapRequestsStartLowerOnTheLadder) {
  std::vector<SliceAlgorithm> FromConservative =
      ladderTiers(SliceAlgorithm::Conservative);
  ASSERT_EQ(FromConservative.size(), 2u);
  EXPECT_EQ(FromConservative[1], SliceAlgorithm::Lyle);

  std::vector<SliceAlgorithm> FromLyle = ladderTiers(SliceAlgorithm::Lyle);
  ASSERT_EQ(FromLyle.size(), 1u);
  EXPECT_EQ(FromLyle[0], SliceAlgorithm::Lyle);
}

TEST(LadderEligibilityTest, StructuredReturnFreeProgramIsEligible) {
  ErrorOr<Analysis> A = Analysis::fromSource("read(a);\n"
                                             "while (a > 0) {\n"
                                             "  a = a - 1;\n"
                                             "}\n"
                                             "write(a);\n");
  ASSERT_TRUE(A.hasValue());
  EXPECT_TRUE(conservativeTierEligible(*A));
}

TEST(LadderEligibilityTest, StructuredGotosStayEligible) {
  // A forward goto whose target is a lexical successor is exactly the
  // "structured jump" Figure 13 was designed for — it must not defeat
  // the rung.
  ErrorOr<Analysis> A = Analysis::fromSource("read(a);\n"
                                             "if (a > 0) goto L;\n"
                                             "a = a + 1;\n"
                                             "L: write(a);\n");
  ASSERT_TRUE(A.hasValue());
  EXPECT_TRUE(conservativeTierEligible(*A));
}

TEST(LadderEligibilityTest, BackwardGotosDefeatTheFigure13Rung) {
  // A backward goto's target is not a lexical successor, so the LST
  // property Figure 13 leans on does not hold and the rung is unsound.
  ErrorOr<Analysis> A = Analysis::fromSource("read(a);\n"
                                             "L: a = a - 1;\n"
                                             "if (a > 0) goto L;\n"
                                             "write(a);\n");
  ASSERT_TRUE(A.hasValue());
  EXPECT_FALSE(conservativeTierEligible(*A));
}

TEST(LadderEligibilityTest, ReturnsDefeatTheFigure13Rung) {
  // Finding 2: `return` violates the paper's Section-4 property 2, so
  // Figures 12/13 can drop a jump the criterion needs even though the
  // program is otherwise structured (tests/FindingsTest.cpp holds the
  // full counterexample).
  ErrorOr<Analysis> A = Analysis::fromSource("read(a);\n"
                                             "if (a > 0) {\n"
                                             "  while (a < 10) {\n"
                                             "    return;\n"
                                             "  }\n"
                                             "}\n"
                                             "write(a);\n");
  ASSERT_TRUE(A.hasValue());
  EXPECT_FALSE(conservativeTierEligible(*A));
}

//===----------------------------------------------------------------------===//
// Ladder behaviour
//===----------------------------------------------------------------------===//

TEST(LadderTest, ServesRequestedTierWhenBudgetAllows) {
  const PaperExample &Ex = paperExample("fig1a");
  LadderOptions Opts;
  LadderResult Res =
      runLadder(Ex.Source, Ex.Crit, SliceAlgorithm::Agrawal, Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_FALSE(Res.Degraded);
  EXPECT_EQ(Res.Served, SliceAlgorithm::Agrawal);
  EXPECT_EQ(Res.Lines, Ex.AgrawalLines);
  ASSERT_EQ(Res.Attempts.size(), 1u);
  EXPECT_TRUE(Res.Attempts.front().Served);
}

TEST(LadderTest, InjectedFaultOnFirstRungDegradesWithFullReport) {
  // Ordinal 1 fails the requested rung's very first checkpoint; the
  // fault fires exactly once, so the retry rungs run clean. fig1a's
  // gotos are structured (targets are lexical successors), so the
  // Figure-13 rung is eligible and serves the degraded request.
  const PaperExample &Ex = paperExample("fig1a");
  FaultInjection::ScopedArm Arm(1);
  LadderOptions Opts;
  LadderResult Res =
      runLadder(Ex.Source, Ex.Crit, SliceAlgorithm::Agrawal, Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_TRUE(Res.Degraded);
  EXPECT_EQ(Res.Served, SliceAlgorithm::Conservative);
  ASSERT_EQ(Res.Attempts.size(), 2u);
  EXPECT_FALSE(Res.Attempts[0].Served);
  EXPECT_NE(Res.Attempts[0].Trip.find("injected fault"), std::string::npos);
  EXPECT_TRUE(Res.Attempts[1].Served);
  EXPECT_TRUE(projectionSound(Res, Ex.Crit));
}

TEST(LadderTest, UnstructuredJumpsSkipTheFigure13RungAndFallToLyle) {
  // A backward goto defeats the Figure-13 eligibility check, so the
  // degraded request must walk past it — with the skip on the record —
  // down to Lyle, which is sound on every exit-reachable program.
  const std::string Source = "read(a);\n"
                             "L: a = a - 1;\n"
                             "if (a > 0) goto L;\n"
                             "write(a);\n";
  const Criterion Crit(4, {"a"});
  FaultInjection::ScopedArm Arm(1);
  LadderOptions Opts;
  LadderResult Res = runLadder(Source, Crit, SliceAlgorithm::Agrawal, Opts);
  ASSERT_TRUE(Res.Ok);
  EXPECT_TRUE(Res.Degraded);
  EXPECT_EQ(Res.Served, SliceAlgorithm::Lyle);
  ASSERT_EQ(Res.Attempts.size(), 3u);
  EXPECT_NE(Res.Attempts[0].Trip.find("injected fault"), std::string::npos);
  EXPECT_TRUE(Res.Attempts[1].Skipped);
  EXPECT_NE(Res.Attempts[1].SkipReason.find("unsound"), std::string::npos);
  EXPECT_TRUE(Res.Attempts[2].Served);
  EXPECT_TRUE(projectionSound(Res, Crit));
}

TEST(LadderTest, DegradeDisabledRefusesInsteadOfFallingBack) {
  const PaperExample &Ex = paperExample("fig1a");
  FaultInjection::ScopedArm Arm(1);
  LadderOptions Opts;
  Opts.Degrade = false;
  LadderResult Res =
      runLadder(Ex.Source, Ex.Crit, SliceAlgorithm::Agrawal, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_TRUE(Res.Diags.hasKind(DiagKind::ResourceExhausted));
  ASSERT_EQ(Res.Attempts.size(), 1u);
}

TEST(LadderTest, MalformedProgramRefusesOnFirstRung) {
  LadderOptions Opts;
  LadderResult Res = runLadder("while (", Criterion(1, {}),
                               SliceAlgorithm::Agrawal, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_FALSE(Res.Diags.hasKind(DiagKind::ResourceExhausted));
  // One rung only: syntax errors repeat identically on every tier.
  EXPECT_EQ(Res.Attempts.size(), 1u);
}

TEST(LadderTest, CancellationAbortsWithoutServingCheaperTiers) {
  const PaperExample &Ex = paperExample("fig1a");
  std::atomic<bool> Cancel{true};
  LadderOptions Opts;
  Opts.B.Cancel = &Cancel;
  Opts.B.PollStride = 1;
  LadderResult Res =
      runLadder(Ex.Source, Ex.Crit, SliceAlgorithm::Agrawal, Opts);
  EXPECT_FALSE(Res.Ok);
  EXPECT_TRUE(Res.Diags.hasKind(DiagKind::ResourceExhausted));
}

TEST(LadderTest, StepWindowServesDegradedUnderTheBudgetThatRefusedFig7) {
  // The window that makes degradation real: measure both tiers' whole-
  // pipeline step cost on a goto-dense program, then hand the ladder a
  // budget between them. Figure 7 must trip, and Lyle must serve under
  // that same budget (rungs get a fresh full step budget — a shrunken
  // one could never fit, since analysis dominates both tiers' cost).
  std::string Source = gotoMesh(60);
  Criterion Crit(122, {"s"});

  auto measure = [&](SliceAlgorithm Algo) -> uint64_t {
    LadderOptions Opts;
    LadderResult Res = runLadder(Source, Crit, Algo, Opts);
    EXPECT_TRUE(Res.Ok);
    return Res.Ok ? Res.A->guard().steps() : 0;
  };
  uint64_t LyleCost = measure(SliceAlgorithm::Lyle);
  uint64_t Fig7Cost = measure(SliceAlgorithm::Agrawal);
  ASSERT_GT(Fig7Cost, LyleCost)
      << "mesh no longer separates the tiers; regenerate it larger";

  LadderOptions Opts;
  Opts.B.MaxSteps = LyleCost + (Fig7Cost - LyleCost) / 2;
  LadderResult Res =
      runLadder(Source, Crit, SliceAlgorithm::Agrawal, Opts);
  ASSERT_TRUE(Res.Ok) << Res.Diags.str();
  EXPECT_TRUE(Res.Degraded);
  EXPECT_EQ(Res.Served, SliceAlgorithm::Lyle);
  EXPECT_TRUE(projectionSound(Res, Crit));
}

//===----------------------------------------------------------------------===//
// Soundness sweeps
//===----------------------------------------------------------------------===//

TEST(LadderSoundnessTest, EveryPaperFigureSoundOnEveryRung) {
  for (const PaperExample &Ex : paperExamples()) {
    // Precise serve.
    LadderOptions Opts;
    LadderResult Precise =
        runLadder(Ex.Source, Ex.Crit, SliceAlgorithm::Agrawal, Opts);
    ASSERT_TRUE(Precise.Ok) << Ex.Name << ": " << Precise.Diags.str();
    EXPECT_TRUE(projectionSound(Precise, Ex.Crit)) << Ex.Name;

    // Degraded serve, forced by failing the first rung's first
    // checkpoint. Whatever rung picks the request up must still be
    // behaviour-preserving — this is where a superset check would
    // wave through Finding 2's dropped return.
    FaultInjection::ScopedArm Arm(1);
    LadderResult Degraded =
        runLadder(Ex.Source, Ex.Crit, SliceAlgorithm::Agrawal, Opts);
    ASSERT_TRUE(Degraded.Ok) << Ex.Name << ": " << Degraded.Diags.str();
    EXPECT_TRUE(Degraded.Degraded) << Ex.Name;
    EXPECT_TRUE(projectionSound(Degraded, Ex.Crit)) << Ex.Name;
  }
}

TEST(LadderSoundnessTest, HundredSeedGeneratorSweep) {
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    GenOptions Gen;
    Gen.Seed = Seed;
    Gen.TargetStmts = 30;
    Gen.AllowGotos = (Seed % 2) == 1;
    std::string Source = generateProgram(Gen);

    ErrorOr<Analysis> Probe = Analysis::fromSource(Source);
    if (!Probe)
      continue;
    std::vector<Criterion> Crits = reachableWriteCriteria(*Probe);
    if (Crits.size() > 2)
      Crits.resize(2);

    for (const Criterion &Crit : Crits) {
      LadderOptions Opts;
      LadderResult Precise =
          runLadder(Source, Crit, SliceAlgorithm::Agrawal, Opts);
      if (Precise.Ok) {
        EXPECT_TRUE(projectionSound(Precise, Crit)) << "seed " << Seed;
      }

      FaultInjection::ScopedArm Arm(1);
      LadderResult Degraded =
          runLadder(Source, Crit, SliceAlgorithm::Agrawal, Opts);
      if (Degraded.Ok) {
        EXPECT_TRUE(projectionSound(Degraded, Crit)) << "seed " << Seed;
      } else {
        // A refusal must be fully accounted: every rung tripped or
        // was skipped, none silently omitted.
        EXPECT_FALSE(Degraded.Attempts.empty()) << "seed " << Seed;
        for (const LadderAttempt &At : Degraded.Attempts)
          EXPECT_FALSE(At.Served) << "seed " << Seed;
      }
    }
  }
}

} // namespace
