//===- tests/SupervisorTest.cpp - Sandbox supervisor unit tests ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The process-isolation layer in isolation: pipe framing, wait-status
/// rendering, and the Supervisor's per-request verdicts — served,
/// crashed (busy kill), hung (deadline kill), innocent retry after an
/// idle death, and the restart-storm circuit breaker. POSIX-only;
/// elsewhere the suite reduces to the graceful-fallback check.
///
//===----------------------------------------------------------------------===//

#include "service/Ipc.h"
#include "service/Supervisor.h"
#include "support/Pipe.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace jslice;

namespace {

ServiceRequest tinyRequest(const std::string &Id) {
  ServiceRequest R;
  R.Id = Id;
  R.Program = "read(a);\nwrite(a);\n";
  R.Line = 2;
  R.Vars = {"a"};
  return R;
}

/// A straight-line dependence chain long enough that slicing it takes
/// hundreds of milliseconds — the busy window the kill and hang tests
/// aim at (a 20k chain measures ~700ms on CI-class hardware).
ServiceRequest slowRequest(const std::string &Id, unsigned N = 20000) {
  ServiceRequest R;
  R.Id = Id;
  R.Program = "read(a0);\n";
  for (unsigned I = 1; I != N; ++I)
    R.Program += "a" + std::to_string(I) + " = a" + std::to_string(I - 1) +
                 " + 1;\n";
  R.Program += "write(a" + std::to_string(N - 1) + ");\n";
  R.Line = N + 1;
  R.Vars = {"a" + std::to_string(N - 1)};
  return R;
}

std::string statusOf(const DispatchResult &R) {
  std::optional<JsonValue> V = JsonValue::parse(R.ResponseJson);
  if (!V || !V->find("status") || !V->find("status")->isString())
    return "";
  return V->find("status")->asString();
}

/// Polls \p Cond for up to \p Ms milliseconds.
template <typename Fn> bool eventually(Fn Cond, uint64_t Ms = 5000) {
  for (uint64_t I = 0; I * 10 < Ms; ++I) {
    if (Cond())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Cond();
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

TEST(IpcTest, FramesRoundTrip) {
  Pipe P;
  ASSERT_TRUE(P.make());
  EXPECT_TRUE(writeFrame(P.WriteFd, "hello"));
  EXPECT_TRUE(writeFrame(P.WriteFd, ""));
  std::string Out;
  EXPECT_EQ(readFrame(P.ReadFd, Out, 1000), FrameReadStatus::Ok);
  EXPECT_EQ(Out, "hello");
  EXPECT_EQ(readFrame(P.ReadFd, Out, 1000), FrameReadStatus::Ok);
  EXPECT_EQ(Out, "");
  P.closeWrite();
  EXPECT_EQ(readFrame(P.ReadFd, Out, 1000), FrameReadStatus::Eof);
}

TEST(IpcTest, ReadHonoursTheDeadline) {
  Pipe P;
  ASSERT_TRUE(P.make());
  std::string Out;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(readFrame(P.ReadFd, Out, 50), FrameReadStatus::Timeout);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  EXPECT_GE(Ms, 45);
  EXPECT_LT(Ms, 5000);
}

TEST(IpcTest, TornFrameCannotPinTheReaderPastItsDeadline) {
  Pipe P;
  ASSERT_TRUE(P.make());
  // Half a header, then silence: the reader must give up on time, not
  // block inside a full-frame read.
  char Half[2] = {0x10, 0};
  ASSERT_TRUE(writeFull(P.WriteFd, Half, sizeof(Half)));
  std::string Out;
  EXPECT_EQ(readFrame(P.ReadFd, Out, 50), FrameReadStatus::Timeout);
}

TEST(PipeTest, DescribesWaitStatuses) {
  // Build statuses the portable way: actually exit/kill children.
  pid_t P1 = fork();
  if (P1 == 0)
    _exit(3);
  int Status = 0;
  ASSERT_EQ(waitpid(P1, &Status, 0), P1);
  EXPECT_EQ(describeWaitStatus(Status), "exited with code 3");
  EXPECT_FALSE(exitedCleanly(Status));

  pid_t P2 = fork();
  if (P2 == 0) {
    for (;;)
      pause();
  }
  kill(P2, SIGKILL);
  ASSERT_EQ(waitpid(P2, &Status, 0), P2);
  EXPECT_NE(describeWaitStatus(Status).find("signal 9"), std::string::npos)
      << describeWaitStatus(Status);
  EXPECT_FALSE(exitedCleanly(Status));
}

TEST(SupervisorTest, ServesARequestThroughTheSandbox) {
  SupervisorOptions Opts;
  Opts.Workers = 1;
  Supervisor Sup(Opts);
  ASSERT_TRUE(Sup.start());
  DispatchResult R = Sup.dispatch(tinyRequest("r1"), 5000);
  EXPECT_EQ(R.K, DispatchResult::Kind::Served);
  EXPECT_EQ(statusOf(R), "ok");
  SupervisorStats S = Sup.stats();
  EXPECT_EQ(S.Spawns, 1u);
  EXPECT_EQ(S.Crashes, 0u);
  EXPECT_EQ(S.WorkersAlive, 1u);
  Sup.stop();
}

TEST(SupervisorTest, IdleDeathHealsAndTheNextRequestIsInnocent) {
  SupervisorOptions Opts;
  Opts.Workers = 1;
  Opts.BackoffBaseMs = 1;
  Supervisor Sup(Opts);
  ASSERT_TRUE(Sup.start());

  uint64_t Rng = 42;
  ASSERT_GT(Sup.chaosKillWorker(Rng), 0);
  // The monitor reaps the idle death, counts the crash, and respawns.
  EXPECT_TRUE(eventually([&] { return Sup.restarts() >= 1; }));
  EXPECT_GE(Sup.crashes(), 1u);

  // The request that never reached the dead worker still gets served.
  DispatchResult R = Sup.dispatch(tinyRequest("r2"), 5000);
  EXPECT_EQ(R.K, DispatchResult::Kind::Served);
  EXPECT_EQ(statusOf(R), "ok");
  Sup.stop();
}

TEST(SupervisorTest, BusyKillBecomesACrashVerdictWithTheWaitStatus) {
  SupervisorOptions Opts;
  Opts.Workers = 1;
  Supervisor Sup(Opts);
  ASSERT_TRUE(Sup.start());

  DispatchResult R;
  std::thread T([&] { R = Sup.dispatch(slowRequest("victim"), 30000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  uint64_t Rng = 7;
  long Pid = Sup.chaosKillWorker(Rng);
  T.join();

  if (Pid > 0 && R.K == DispatchResult::Kind::Crashed) {
    EXPECT_NE(R.CrashDetail.find("signal 9"), std::string::npos)
        << R.CrashDetail;
  } else {
    // The slice finished before the kill landed (very fast machine) —
    // the only other legal verdict is a served response.
    EXPECT_EQ(R.K, DispatchResult::Kind::Served);
  }
  Sup.stop();
}

TEST(SupervisorTest, HungWorkerIsKilledAtTheDeadline) {
  SupervisorOptions Opts;
  Opts.Workers = 1;
  Opts.HangGraceMs = 0;
  Supervisor Sup(Opts);
  ASSERT_TRUE(Sup.start());

  DispatchResult R = Sup.dispatch(slowRequest("hang"), 50);
  EXPECT_EQ(R.K, DispatchResult::Kind::Crashed);
  EXPECT_TRUE(R.Hung);
  EXPECT_NE(R.CrashDetail.find("hung"), std::string::npos) << R.CrashDetail;
  EXPECT_GE(Sup.stats().Hangs, 1u);
  Sup.stop();
}

TEST(SupervisorTest, RestartStormOpensTheBreakerAndCooldownCloses) {
  SupervisorOptions Opts;
  Opts.Workers = 1;
  Opts.BackoffBaseMs = 1;
  Opts.BreakerThreshold = 3;
  Opts.BreakerWindowMs = 60000; // Every kill lands inside the window.
  Opts.BreakerCooldownMs = 300;
  Supervisor Sup(Opts);
  ASSERT_TRUE(Sup.start());

  uint64_t Rng = 9;
  for (unsigned I = 0; I != 3; ++I) {
    uint64_t Before = Sup.crashes();
    if (Sup.chaosKillWorker(Rng) < 0) {
      // Worker dead between respawns; wait for the monitor to heal.
      ASSERT_TRUE(eventually([&] { return Sup.chaosKillWorker(Rng) > 0; }));
    }
    ASSERT_TRUE(eventually([&] { return Sup.crashes() > Before; }));
  }

  EXPECT_GE(Sup.stats().BreakerOpens, 1u);
  DispatchResult R = Sup.dispatch(tinyRequest("refused"), 1000);
  EXPECT_EQ(R.K, DispatchResult::Kind::BreakerOpen);
  EXPECT_GE(Sup.stats().BreakerRefusals, 1u);

  // Cooldown passes; the fleet heals; service resumes.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  DispatchResult After = Sup.dispatch(tinyRequest("healed"), 5000);
  EXPECT_EQ(After.K, DispatchResult::Kind::Served);
  Sup.stop();
}

TEST(SupervisorTest, StopIsIdempotent) {
  SupervisorOptions Opts;
  Opts.Workers = 2;
  Supervisor Sup(Opts);
  ASSERT_TRUE(Sup.start());
  Sup.stop();
  Sup.stop(); // Second stop must be a no-op, not a double-join.
  EXPECT_EQ(Sup.stats().WorkersAlive, 0u);
}

#else // !JSLICE_HAVE_POSIX_PROCESS

TEST(SupervisorTest, FailsClosedWithoutPosix) {
  SupervisorOptions Opts;
  Supervisor Sup(Opts);
  EXPECT_FALSE(Sup.start());
  DispatchResult R = Sup.dispatch(tinyRequest("r1"), 1000);
  EXPECT_EQ(R.K, DispatchResult::Kind::Failed);
}

#endif

} // namespace
