//===- tests/PaperFiguresTest.cpp - Golden tests for every paper figure ------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// For every example program in the paper, checks that each algorithm
/// produces exactly the line set the corresponding figure shows, that
/// labels re-associate to the statements the figures attach them to, and
/// that the traversal counts match the paper's prose.
///
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

class PaperFigureTest : public ::testing::TestWithParam<std::string> {
protected:
  const PaperExample &example() const { return paperExample(GetParam()); }

  Analysis analyze() const {
    ErrorOr<Analysis> A = Analysis::fromSource(example().Source);
    EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
    return std::move(*A);
  }

  SliceResult slice(const Analysis &A, SliceAlgorithm Algorithm) const {
    ErrorOr<SliceResult> R = computeSlice(A, example().Crit, Algorithm);
    EXPECT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.diags().str());
    return *R;
  }
};

TEST_P(PaperFigureTest, SourceParsesAndLinesMatchPaperNumbering) {
  Analysis A = analyze();
  // Every line the paper references resolves to at least one node.
  for (unsigned Line : example().AgrawalLines)
    EXPECT_FALSE(A.cfg().nodesOnLine(Line).empty())
        << "no node on paper line " << Line;
}

TEST_P(PaperFigureTest, StructurednessMatchesPaperClassification) {
  Analysis A = analyze();
  EXPECT_EQ(isStructuredProgram(A.cfg(), A.lst()), example().Structured);
}

TEST_P(PaperFigureTest, ConventionalSliceMatchesFigure) {
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Conventional);
  EXPECT_EQ(R.lineSet(A.cfg()), example().ConventionalLines);
}

TEST_P(PaperFigureTest, AgrawalSliceMatchesFigure) {
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A.cfg()), example().AgrawalLines);
}

TEST_P(PaperFigureTest, AgrawalLstTraversalYieldsSameSlice) {
  Analysis A = analyze();
  SliceResult Pdt = slice(A, SliceAlgorithm::Agrawal);
  SliceResult Lst = slice(A, SliceAlgorithm::AgrawalLst);
  EXPECT_EQ(Pdt.lineSet(A.cfg()), Lst.lineSet(A.cfg()))
      << "Section 3: the driving tree must not change the slice";
}

TEST_P(PaperFigureTest, ProductiveTraversalCountMatchesPaper) {
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.ProductiveTraversals, example().ExpectedProductiveTraversals);
}

TEST_P(PaperFigureTest, BallHorwitzEqualsAgrawal) {
  Analysis A = analyze();
  SliceResult Ours = slice(A, SliceAlgorithm::Agrawal);
  SliceResult Baseline = slice(A, SliceAlgorithm::BallHorwitz);
  EXPECT_EQ(Ours.lineSet(A.cfg()), Baseline.lineSet(A.cfg()))
      << "the paper proves Figure 7 equals Ball–Horwitz slices";
}

TEST_P(PaperFigureTest, StructuredSliceMatchesFigure) {
  if (!example().StructuredLines)
    GTEST_SKIP() << "paper shows no Figure-12 slice for this program";
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Structured);
  EXPECT_EQ(R.lineSet(A.cfg()), *example().StructuredLines);
}

TEST_P(PaperFigureTest, ConservativeSliceMatchesFigure) {
  if (!example().ConservativeLines)
    GTEST_SKIP() << "paper shows no Figure-13 slice for this program";
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Conservative);
  EXPECT_EQ(R.lineSet(A.cfg()), *example().ConservativeLines);
}

TEST_P(PaperFigureTest, GallagherSliceMatchesFigureWhenClaimed) {
  if (!example().GallagherLines)
    GTEST_SKIP() << "paper makes no Gallagher claim for this program";
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Gallagher);
  EXPECT_EQ(R.lineSet(A.cfg()), *example().GallagherLines)
      << "Figure 16-b: Gallagher's rule must miss the goto on line 4";
}

TEST_P(PaperFigureTest, JzrSliceMatchesPaperClaim) {
  if (!example().JzrLines)
    GTEST_SKIP() << "paper makes no JZR claim for this program";
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::JiangZhouRobson);
  EXPECT_EQ(R.lineSet(A.cfg()), *example().JzrLines)
      << "Section 5: the rules must miss the jumps on lines 11 and 13";
}

TEST_P(PaperFigureTest, LabelsReassociatePerFigure) {
  Analysis A = analyze();
  SliceResult R = slice(A, SliceAlgorithm::Agrawal);
  std::map<std::string, unsigned> Got;
  for (const auto &[Label, Node] : R.ReassociatedLabels) {
    const Stmt *S = A.cfg().node(Node).S;
    Got[Label] = S ? S->getLoc().Line : 0u; // 0 = exit
  }
  EXPECT_EQ(Got, example().ExpectedReassociations);
}

TEST_P(PaperFigureTest, LyleIsASupersetOfAgrawal) {
  Analysis A = analyze();
  SliceResult Precise = slice(A, SliceAlgorithm::Agrawal);
  SliceResult Conservative = slice(A, SliceAlgorithm::Lyle);
  for (unsigned Node : Precise.Nodes)
    EXPECT_TRUE(Conservative.contains(Node))
        << "Lyle must be conservative w.r.t. Figure 7";
}

INSTANTIATE_TEST_SUITE_P(
    AllFigures, PaperFigureTest,
    ::testing::Values("fig1a", "fig3a", "fig5a", "fig8a", "fig10a", "fig14a",
                      "fig16a"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

} // namespace
