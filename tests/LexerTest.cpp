//===- tests/LexerTest.cpp - Lexer unit tests ---------------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

std::vector<Token> lexOk(const std::string &Source) {
  DiagList Diags;
  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll(Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &Tok : Tokens)
    Out.push_back(Tok.Kind);
  return Out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  std::vector<Token> Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, LexesSimpleAssignment) {
  std::vector<Token> Tokens = lexOk("x = 42;");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{TokenKind::Identifier, TokenKind::Assign,
                                    TokenKind::IntLiteral, TokenKind::Semi,
                                    TokenKind::Eof}));
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[2].IntValue, 42);
}

TEST(LexerTest, DistinguishesKeywordsFromIdentifiers) {
  std::vector<Token> Tokens = lexOk("if ifx while whiled goto gotos");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwGoto);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Identifier);
}

TEST(LexerTest, LexesAllKeywords) {
  std::vector<Token> Tokens =
      lexOk("if else while do for switch case default break continue "
            "return goto read write");
  std::vector<TokenKind> Expected = {
      TokenKind::KwIf,      TokenKind::KwElse,    TokenKind::KwWhile,
      TokenKind::KwDo,      TokenKind::KwFor,     TokenKind::KwSwitch,
      TokenKind::KwCase,    TokenKind::KwDefault, TokenKind::KwBreak,
      TokenKind::KwContinue, TokenKind::KwReturn, TokenKind::KwGoto,
      TokenKind::KwRead,    TokenKind::KwWrite,   TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, LexesTwoCharOperators) {
  std::vector<Token> Tokens = lexOk("<= >= == != && || < > = !");
  std::vector<TokenKind> Expected = {
      TokenKind::Le,       TokenKind::Ge,  TokenKind::EqEq,
      TokenKind::NotEq,    TokenKind::AmpAmp, TokenKind::PipePipe,
      TokenKind::Lt,       TokenKind::Gt,  TokenKind::Assign,
      TokenKind::Not,      TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, TracksLineAndColumn) {
  std::vector<Token> Tokens = lexOk("a = 1;\n  b = 2;");
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[4].Loc, SourceLoc(2, 3)); // 'b' after two spaces.
}

TEST(LexerTest, SkipsLineComments) {
  std::vector<Token> Tokens = lexOk("a = 1; // trailing comment\nb = 2;");
  EXPECT_EQ(Tokens.size(), 9u); // two statements + eof
  EXPECT_EQ(Tokens[4].Text, "b");
  EXPECT_EQ(Tokens[4].Loc.Line, 2u);
}

TEST(LexerTest, SkipsBlockComments) {
  std::vector<Token> Tokens = lexOk("a /* inline */ = /* multi\nline */ 1;");
  EXPECT_EQ(kindsOf(Tokens),
            (std::vector<TokenKind>{TokenKind::Identifier, TokenKind::Assign,
                                    TokenKind::IntLiteral, TokenKind::Semi,
                                    TokenKind::Eof}));
}

TEST(LexerTest, ReportsUnterminatedBlockComment) {
  DiagList Diags;
  Lexer Lex("a = 1; /* never closed");
  Lex.lexAll(Diags);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags.diags()[0].Message.find("unterminated"), std::string::npos);
}

TEST(LexerTest, ReportsStrayCharacters) {
  DiagList Diags;
  Lexer Lex("a = $;");
  std::vector<Token> Tokens = Lex.lexAll(Diags);
  EXPECT_EQ(Diags.size(), 1u);
  // Lexing continues past the bad character.
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Eof);
}

TEST(LexerTest, StrayAmpersandAndPipeAreErrors) {
  DiagList Diags;
  Lexer Lex("a & b | c");
  Lex.lexAll(Diags);
  EXPECT_EQ(Diags.size(), 2u);
}

TEST(LexerTest, TokenKindNamesAreStable) {
  EXPECT_STREQ(tokenKindName(TokenKind::KwIf), "'if'");
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(tokenKindName(TokenKind::Le), "'<='");
}

} // namespace
