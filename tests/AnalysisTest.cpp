//===- tests/AnalysisTest.cpp - Analysis bundle and multi-criteria tests ------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

TEST(AnalysisTest, ParseErrorsPropagate) {
  ErrorOr<Analysis> A = Analysis::fromSource("x = ;");
  ASSERT_FALSE(A.hasValue());
  EXPECT_FALSE(A.diags().empty());
}

TEST(AnalysisTest, SemaErrorsPropagate) {
  ErrorOr<Analysis> A = Analysis::fromSource("goto Nowhere;\n");
  ASSERT_FALSE(A.hasValue());
  EXPECT_NE(A.diags().str().find("undefined label"), std::string::npos);
}

TEST(AnalysisTest, CfgErrorsPropagate) {
  ErrorOr<Analysis> A = Analysis::fromSource("L: goto L;\n");
  ASSERT_FALSE(A.hasValue());
  EXPECT_NE(A.diags().str().find("exit"), std::string::npos);
}

TEST(AnalysisTest, CondJumpPairsDetected) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  // Three conditional-jump statements: lines 3, 5, and 9.
  EXPECT_EQ(A.condJumpPairs().size(), 3u);
  for (auto [Pred, Jump] : A.condJumpPairs()) {
    EXPECT_EQ(A.cfg().node(Pred).Kind, CfgNodeKind::Predicate);
    EXPECT_TRUE(A.cfg().node(Jump).isJump());
    EXPECT_EQ(A.cfg().node(Pred).S->getLoc().Line,
              A.cfg().node(Jump).S->getLoc().Line)
        << "guard and jump share their source line in the corpus";
  }
}

TEST(AnalysisTest, CondJumpPairsSeeThroughBraces) {
  // The adaptation unwraps singleton blocks: `if (c) { { break; } }`
  // still counts as a conditional jump.
  Analysis A = analyzeOk("while (x > 0) {\nif (x == 2) { { break; } }\n"
                         "x = x - 1;\n}\nwrite(x);\n");
  EXPECT_EQ(A.condJumpPairs().size(), 1u);
}

TEST(AnalysisTest, AugmentedGraphOnlyAddsJumpEdges) {
  Analysis A = analyzeOk(paperExample("fig8a").Source);
  size_t Jumps = 0;
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node)
    Jumps += A.cfg().node(Node).isJump();
  EXPECT_EQ(A.augGraph().numEdges(),
            A.cfg().graph().numEdges() + Jumps);
}

TEST(AnalysisTest, AugmentedPdtDiffersOnJumpPrograms) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  bool AnyDifferent = false;
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node)
    if (A.pdt().idom(Node) != A.augPdt().idom(Node))
      AnyDifferent = true;
  EXPECT_TRUE(AnyDifferent)
      << "fall-through edges must change postdominators";
}

TEST(AnalysisTest, MoveSemanticsKeepPointersValid) {
  ErrorOr<Analysis> A = Analysis::fromSource("x = 1;\nwrite(x);\n");
  ASSERT_TRUE(A.hasValue());
  Analysis Moved = std::move(*A);
  // The CFG's statement pointers must still resolve after the move.
  unsigned Node = Moved.cfg().nodesOnLine(2).front();
  EXPECT_TRUE(isa<WriteStmt>(Moved.cfg().node(Node).S));
}

//===----------------------------------------------------------------------===//
// Multi-criterion slicing (Weiser's general criterion)
//===----------------------------------------------------------------------===//

TEST(MultiCriterionTest, UnionOfSeedsCoversBothLocations) {
  Analysis A = analyzeOk("a = 1;\nb = 2;\nwrite(a);\nwrite(b);\n");
  ResolvedCriterion RC =
      *resolveCriteria(A, {Criterion(3, {"a"}), Criterion(4, {"b"})});
  SliceResult R = sliceAgrawal(A, RC);
  EXPECT_EQ(R.lineSet(A.cfg()), (std::set<unsigned>{1, 2, 3, 4}));
}

TEST(MultiCriterionTest, SupersetOfEachSingleSlice) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  ResolvedCriterion Both = *resolveCriteria(
      A, {Criterion(14, {"sum"}), Criterion(15, {"positives"})});
  SliceResult Union = sliceAgrawal(A, Both);
  for (const Criterion &One :
       {Criterion(14, {"sum"}), Criterion(15, {"positives"})}) {
    SliceResult Single = sliceAgrawal(A, *resolveCriterion(A, One));
    for (unsigned Node : Single.Nodes)
      EXPECT_TRUE(Union.contains(Node));
  }
}

TEST(MultiCriterionTest, EmptySetIsAnError) {
  Analysis A = analyzeOk("write(1);\n");
  EXPECT_FALSE(resolveCriteria(A, {}).hasValue());
}

TEST(MultiCriterionTest, AnyBadMemberFails) {
  Analysis A = analyzeOk("write(1);\n");
  EXPECT_FALSE(
      resolveCriteria(A, {Criterion(1, {}), Criterion(99, {})}).hasValue());
}

} // namespace
