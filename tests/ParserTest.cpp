//===- tests/ParserTest.cpp - Parser and sema unit tests ----------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "lang/AstWalk.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source);
  EXPECT_TRUE(Prog.hasValue())
      << (Prog.hasValue() ? "" : Prog.diags().str());
  return Prog.hasValue() ? std::move(*Prog) : nullptr;
}

std::string firstErrorOf(const std::string &Source) {
  ErrorOr<std::unique_ptr<Program>> Prog = parseProgram(Source);
  EXPECT_FALSE(Prog.hasValue()) << "expected a diagnostic";
  if (Prog.hasValue())
    return "";
  return Prog.diags().diags().front().Message;
}

TEST(ParserTest, ParsesAssignment) {
  auto Prog = parseOk("x = 1 + 2 * y;");
  ASSERT_EQ(Prog->topLevel().size(), 1u);
  const auto *Assign = dyn_cast<AssignStmt>(Prog->topLevel()[0]);
  ASSERT_NE(Assign, nullptr);
  EXPECT_EQ(Assign->getTarget(), "x");
  // Precedence: 1 + (2 * y).
  const auto *Add = dyn_cast<BinaryExpr>(Assign->getValue());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->getOp(), BinaryOp::Add);
  EXPECT_TRUE(isa<BinaryExpr>(Add->getRHS()));
}

TEST(ParserTest, ParsesIfElseChain) {
  auto Prog = parseOk("if (x < 0) y = 1; else if (x > 0) y = 2; else y = 3;");
  const auto *If = dyn_cast<IfStmt>(Prog->topLevel()[0]);
  ASSERT_NE(If, nullptr);
  ASSERT_TRUE(If->hasElse());
  EXPECT_TRUE(isa<IfStmt>(If->getElse()));
}

TEST(ParserTest, DanglingElseBindsToInnerIf) {
  auto Prog = parseOk("if (a > 0) if (b > 0) x = 1; else x = 2;");
  const auto *Outer = dyn_cast<IfStmt>(Prog->topLevel()[0]);
  ASSERT_NE(Outer, nullptr);
  EXPECT_FALSE(Outer->hasElse());
  const auto *Inner = dyn_cast<IfStmt>(Outer->getThen());
  ASSERT_NE(Inner, nullptr);
  EXPECT_TRUE(Inner->hasElse());
}

TEST(ParserTest, ParsesLoops) {
  auto Prog = parseOk("while (x < 10) x = x + 1;\n"
                      "do x = x - 1; while (x > 0);\n"
                      "for (i = 0; i < 5; i = i + 1) write(i);\n"
                      "for (;;) break;");
  ASSERT_EQ(Prog->topLevel().size(), 4u);
  EXPECT_TRUE(isa<WhileStmt>(Prog->topLevel()[0]));
  EXPECT_TRUE(isa<DoWhileStmt>(Prog->topLevel()[1]));
  const auto *For = dyn_cast<ForStmt>(Prog->topLevel()[2]);
  ASSERT_NE(For, nullptr);
  EXPECT_NE(For->getInit(), nullptr);
  EXPECT_NE(For->getCond(), nullptr);
  EXPECT_NE(For->getStep(), nullptr);
  const auto *Forever = dyn_cast<ForStmt>(Prog->topLevel()[3]);
  ASSERT_NE(Forever, nullptr);
  EXPECT_EQ(Forever->getInit(), nullptr);
  EXPECT_EQ(Forever->getCond(), nullptr);
  EXPECT_EQ(Forever->getStep(), nullptr);
}

TEST(ParserTest, ParsesSwitchWithFallthroughClauses) {
  auto Prog = parseOk("switch (x) { case 1: y = 1; case 2: y = 2; break; "
                      "default: y = 3; }");
  const auto *Switch = dyn_cast<SwitchStmt>(Prog->topLevel()[0]);
  ASSERT_NE(Switch, nullptr);
  ASSERT_EQ(Switch->getClauses().size(), 3u);
  EXPECT_FALSE(Switch->getClauses()[0].IsDefault);
  EXPECT_EQ(Switch->getClauses()[0].Value, 1);
  EXPECT_TRUE(Switch->getClauses()[2].IsDefault);
}

TEST(ParserTest, ParsesNegativeCaseValues) {
  auto Prog = parseOk("switch (x) { case -3: y = 1; }");
  const auto *Switch = dyn_cast<SwitchStmt>(Prog->topLevel()[0]);
  ASSERT_NE(Switch, nullptr);
  EXPECT_EQ(Switch->getClauses()[0].Value, -3);
}

TEST(ParserTest, ParsesLabelsAndGotos) {
  auto Prog = parseOk("L1: x = 1;\ngoto L1;");
  EXPECT_EQ(Prog->topLevel()[0]->getLabel(), "L1");
  const auto *Goto = dyn_cast<GotoStmt>(Prog->topLevel()[1]);
  ASSERT_NE(Goto, nullptr);
  EXPECT_EQ(Goto->getTarget(), Prog->topLevel()[0]);
}

TEST(ParserTest, SemaResolvesBreakAndContinueTargets) {
  auto Prog = parseOk("while (x > 0) { if (x == 1) break; continue; }");
  const auto *While = cast<WhileStmt>(Prog->topLevel()[0]);
  const BreakStmt *Break = nullptr;
  const ContinueStmt *Continue = nullptr;
  walkStmtTree(While, [&](const Stmt *S) {
    if (const auto *B = dyn_cast<BreakStmt>(S))
      Break = B;
    if (const auto *C = dyn_cast<ContinueStmt>(S))
      Continue = C;
  });
  ASSERT_NE(Break, nullptr);
  ASSERT_NE(Continue, nullptr);
  EXPECT_EQ(Break->getTarget(), While);
  EXPECT_EQ(Continue->getTarget(), While);
}

TEST(ParserTest, BreakBindsToSwitchContinueSkipsIt) {
  auto Prog =
      parseOk("while (a > 0) { switch (b) { case 1: break; case 2: "
              "continue; } }");
  const auto *While = cast<WhileStmt>(Prog->topLevel()[0]);
  const SwitchStmt *Switch = nullptr;
  const BreakStmt *Break = nullptr;
  const ContinueStmt *Continue = nullptr;
  walkStmtTree(While, [&](const Stmt *S) {
    if (const auto *Sw = dyn_cast<SwitchStmt>(S))
      Switch = Sw;
    if (const auto *B = dyn_cast<BreakStmt>(S))
      Break = B;
    if (const auto *C = dyn_cast<ContinueStmt>(S))
      Continue = C;
  });
  ASSERT_NE(Break, nullptr);
  ASSERT_NE(Continue, nullptr);
  EXPECT_EQ(Break->getTarget(), Switch);
  EXPECT_EQ(Continue->getTarget(), While);
}

TEST(ParserTest, SemaSetsParentLinks) {
  auto Prog = parseOk("if (x > 0) { y = 1; }");
  const auto *If = cast<IfStmt>(Prog->topLevel()[0]);
  const auto *Block = cast<BlockStmt>(If->getThen());
  EXPECT_EQ(If->getParent(), nullptr);
  EXPECT_EQ(Block->getParent(), If);
  EXPECT_EQ(Block->getBody()[0]->getParent(), Block);
}

TEST(ParserTest, RejectsGotoToUndefinedLabel) {
  EXPECT_NE(firstErrorOf("goto Nowhere;").find("undefined label"),
            std::string::npos);
}

TEST(ParserTest, RejectsDuplicateLabels) {
  EXPECT_NE(firstErrorOf("L: x = 1;\nL: y = 2;").find("duplicate label"),
            std::string::npos);
}

TEST(ParserTest, RejectsBreakOutsideLoop) {
  EXPECT_NE(firstErrorOf("break;").find("outside"), std::string::npos);
}

TEST(ParserTest, RejectsContinueInsideSwitchOnly) {
  EXPECT_NE(firstErrorOf("switch (x) { case 1: continue; }")
                .find("outside of a loop"),
            std::string::npos);
}

TEST(ParserTest, RejectsMissingSemicolon) {
  EXPECT_NE(firstErrorOf("x = 1").find("expected ';'"), std::string::npos);
}

TEST(ParserTest, RejectsMultipleDefaults) {
  EXPECT_NE(firstErrorOf("switch (x) { default: x = 1; default: x = 2; }")
                .find("multiple 'default'"),
            std::string::npos);
}

TEST(ParserTest, RejectsStatementStartingWithOperator) {
  EXPECT_NE(firstErrorOf("* = 3;").find("expected a statement"),
            std::string::npos);
}

TEST(ParserTest, StatementIdsAreDense) {
  auto Prog = parseOk("x = 1; y = 2; { z = 3; }");
  std::vector<const Stmt *> All = Prog->allStmts();
  for (unsigned I = 0; I != All.size(); ++I)
    EXPECT_EQ(All[I]->getId(), I);
}

TEST(ParserTest, RoundTripsThroughPrettyPrinter) {
  const char *Source = "sum = 0;\n"
                       "while (!eof()) {\n"
                       "read(x);\n"
                       "if (x <= 0) { sum = sum + f1(x); continue; }\n"
                       "switch (x % 3) { case 0: break; case 1: sum = 1; "
                       "default: sum = 2; }\n"
                       "}\n"
                       "write(sum);\n";
  auto Prog = parseOk(Source);
  std::string Printed = printProgram(*Prog);
  auto Reparsed = parseOk(Printed);
  ASSERT_NE(Reparsed, nullptr);
  // Printing is canonical: a second round trip is a fixpoint.
  EXPECT_EQ(printProgram(*Reparsed), Printed);
}

} // namespace
