//===- tests/SupportTest.cpp - Support-library unit tests ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/ResourceGuard.h"
#include "support/StringUtils.h"
#include "support/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace jslice;

namespace {

//===----------------------------------------------------------------------===//
// BitVector
//===----------------------------------------------------------------------===//

TEST(BitVectorTest, SetTestReset) {
  BitVector BV(130); // Spans three words.
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_FALSE(BV.any());
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVectorTest, SetAlgebra) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(65);
  B.set(65);
  B.set(2);

  BitVector Union = A;
  Union |= B;
  EXPECT_EQ(Union.count(), 3u);

  BitVector Inter = A;
  Inter &= B;
  EXPECT_EQ(Inter.count(), 1u);
  EXPECT_TRUE(Inter.test(65));

  BitVector Diff = A;
  Diff.resetOf(B);
  EXPECT_EQ(Diff.count(), 1u);
  EXPECT_TRUE(Diff.test(1));
}

TEST(BitVectorTest, EqualityAndClear) {
  BitVector A(40), B(40);
  A.set(7);
  EXPECT_NE(A, B);
  B.set(7);
  EXPECT_EQ(A, B);
  A.clear();
  EXPECT_FALSE(A.any());
  EXPECT_NE(A, B);
}

TEST(BitVectorTest, ForEachSetBitVisitsInOrder) {
  BitVector BV(200);
  std::vector<size_t> Expected = {3, 64, 127, 128, 199};
  for (size_t Idx : Expected)
    BV.set(Idx);
  std::vector<size_t> Seen;
  BV.forEachSetBit([&](size_t Idx) { Seen.push_back(Idx); });
  EXPECT_EQ(Seen, Expected);
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Animal {
  enum Kind { DogKind, CatKind } K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(DogKind) {}
  static bool classof(const Animal *A) { return A->K == DogKind; }
};
struct Cat : Animal {
  Cat() : Animal(CatKind) {}
  static bool classof(const Animal *A) { return A->K == CatKind; }
};

TEST(CastingTest, IsaCastDynCast) {
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(isa<Dog>(A));
  EXPECT_FALSE(isa<Cat>(A));
  EXPECT_TRUE((isa<Cat, Dog>(A))) << "variadic isa";
  EXPECT_EQ(cast<Dog>(A), &D);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
  EXPECT_EQ(dyn_cast<Dog>(A), &D);
  Animal *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<Dog>(Null), nullptr);
}

TEST(CastingTest, ConstOverloads) {
  const Dog D;
  const Animal *A = &D;
  EXPECT_EQ(cast<Dog>(A), &D);
  EXPECT_EQ(dyn_cast<Dog>(A), &D);
}

//===----------------------------------------------------------------------===//
// Error plumbing
//===----------------------------------------------------------------------===//

TEST(ErrorTest, SuccessAndFailureStates) {
  ErrorOr<int> Ok(42);
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_EQ(*Ok, 42);

  DiagList Diags;
  Diags.report(SourceLoc(3, 7), "something bad");
  ErrorOr<int> Bad(std::move(Diags));
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_EQ(Bad.diags().size(), 1u);
  EXPECT_EQ(Bad.diags().diags()[0].str(), "3:7: error: something bad");
}

TEST(ErrorTest, SingleDiagConstructor) {
  ErrorOr<int> Bad(Diag(SourceLoc(1, 1), "oops"));
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.diags().str().find("oops"), std::string::npos);
}

TEST(ErrorTest, SourceLocFormatting) {
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 3).str(), "12:3");
  EXPECT_TRUE(SourceLoc(1, 1) < SourceLoc(1, 2));
  EXPECT_TRUE(SourceLoc(1, 9) < SourceLoc(2, 1));
}

//===----------------------------------------------------------------------===//
// ResourceGuard poll stride and cancellation
//===----------------------------------------------------------------------===//

TEST(PollStrideTest, EffectiveStrideRoundsUpToAPowerOfTwo) {
  Budget B;
  EXPECT_EQ(B.effectivePollStride(), Budget::DefaultPollStride);
  B.PollStride = 1;
  EXPECT_EQ(B.effectivePollStride(), 1u);
  B.PollStride = 3;
  EXPECT_EQ(B.effectivePollStride(), 4u);
  B.PollStride = 16;
  EXPECT_EQ(B.effectivePollStride(), 16u);
  B.PollStride = 257;
  EXPECT_EQ(B.effectivePollStride(), 512u);
}

TEST(PollStrideTest, DefaultStrideDefersTheDeadlineToThePollBoundary) {
  // The deadline has long passed, but with the default 256 stride the
  // guard must not look at the clock until checkpoint 256 — the
  // documented overshoot window that motivates Budget::PollStride.
  Budget B;
  B.DeadlineMs = 1;
  ResourceGuard G(B);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (unsigned I = 0; I != 255; ++I)
    ASSERT_TRUE(G.checkpoint("test.site")) << "checkpoint " << I;
  EXPECT_FALSE(G.checkpoint("test.site"));
  EXPECT_EQ(G.reason(), "deadline exceeded at test.site");
}

TEST(PollStrideTest, StrideOnePollsEveryCheckpoint) {
  Budget B;
  B.DeadlineMs = 1;
  B.PollStride = 1;
  ResourceGuard G(B);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(G.checkpoint("test.site"));
  EXPECT_EQ(G.reason(), "deadline exceeded at test.site");
}

TEST(PollStrideTest, CancellationTripsAtTheNextPoll) {
  std::atomic<bool> Cancel{false};
  Budget B;
  B.PollStride = 1;
  B.Cancel = &Cancel;
  ResourceGuard G(B);
  EXPECT_TRUE(G.checkpoint("test.site"));
  Cancel.store(true);
  EXPECT_FALSE(G.checkpoint("test.site"));
  EXPECT_EQ(G.reason(), "cancelled at test.site");
}

TEST(PollStrideTest, GuardLatchesAfterTheFirstTrip) {
  std::atomic<bool> Cancel{true};
  Budget B;
  B.PollStride = 1;
  B.Cancel = &Cancel;
  ResourceGuard G(B);
  EXPECT_FALSE(G.checkpoint("test.site"));
  Cancel.store(false); // Un-cancelling must not revive the pipeline.
  EXPECT_FALSE(G.checkpoint("test.site"));
  EXPECT_TRUE(G.exhausted());
}

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

TEST(WorkerPoolTest, DrainBarriersOnSubmittedTasks) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.threads(), 4u);
  std::atomic<unsigned> Done{0};
  for (unsigned I = 0; I != 64; ++I)
    Pool.submit([&Done] { ++Done; });
  Pool.drain();
  EXPECT_EQ(Done.load(), 64u);
  // The pool survives a drain; a second wave still runs.
  Pool.submit([&Done] { ++Done; });
  Pool.drain();
  EXPECT_EQ(Done.load(), 65u);
}

TEST(WorkerPoolTest, ParallelForCoversTheIndexSpaceExactlyOnce) {
  std::vector<std::atomic<unsigned>> Hits(101);
  WorkerPool::parallelFor(4, Hits.size(),
                          [&Hits](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
  // The inline (Threads <= 1) path covers the same contract.
  WorkerPool::parallelFor(1, Hits.size(), [&Hits](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 2u) << "index " << I;
}

//===----------------------------------------------------------------------===//
// String utilities
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtilsTest, FormatLineSet) {
  EXPECT_EQ(formatLineSet({}), "{}");
  EXPECT_EQ(formatLineSet({3, 1, 2}), "{1, 2, 3}");
}

TEST(StringUtilsTest, SplitLines) {
  EXPECT_EQ(splitLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(splitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(splitLines(""), (std::vector<std::string>{}));
  EXPECT_EQ(splitLines("\n\n"), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilsTest, Indent) {
  EXPECT_EQ(indent(0), "");
  EXPECT_EQ(indent(3), "      ");
}

} // namespace
