//===- tests/NetTest.cpp - TCP transport unit tests ------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The net layer, bottom up: HOST:PORT parsing, the bounded write
/// buffer against real sockets (short writes, EAGAIN, peer reset
/// mid-frame), the IPC frame reader's deadline under an EINTR storm,
/// the TcpServer's containment behaviours (malformed lines, oversized
/// lines, connection cap, idle timeout, read deadline, backpressure,
/// graceful drain), the retrying client, and the chaos proxy.
///
/// Everything binds 127.0.0.1 on ephemeral ports; no test depends on a
/// fixed port or an external process.
///
//===----------------------------------------------------------------------===//

#include "net/ChaosProxy.h"
#include "net/Client.h"
#include "net/Socket.h"
#include "net/StandbyTail.h"
#include "net/TcpServer.h"
#include "net/WriteBuffer.h"
#include "service/Ipc.h"
#include "service/Journal.h"
#include "service/Replication.h"
#include "service/Server.h"
#include "support/Pipe.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#ifdef JSLICE_HAVE_POSIX_PROCESS
#include <csignal>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace jslice;

namespace {

//===----------------------------------------------------------------------===//
// parseHostPort
//===----------------------------------------------------------------------===//

TEST(ParseHostPortTest, AcceptsHostColonPort) {
  std::string Host;
  uint16_t Port = 1;
  ASSERT_TRUE(parseHostPort("127.0.0.1:9000", Host, Port));
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 9000);
  ASSERT_TRUE(parseHostPort("localhost:0", Host, Port));
  EXPECT_EQ(Host, "localhost");
  EXPECT_EQ(Port, 0);
  ASSERT_TRUE(parseHostPort("0.0.0.0:65535", Host, Port));
  EXPECT_EQ(Port, 65535);
}

TEST(ParseHostPortTest, RejectsMalformedSpecs) {
  std::string Host;
  uint16_t Port;
  EXPECT_FALSE(parseHostPort("", Host, Port));
  EXPECT_FALSE(parseHostPort("localhost", Host, Port));     // No colon.
  EXPECT_FALSE(parseHostPort(":9000", Host, Port));         // Empty host.
  EXPECT_FALSE(parseHostPort("host:", Host, Port));         // Empty port.
  EXPECT_FALSE(parseHostPort("host:abc", Host, Port));      // Not a number.
  EXPECT_FALSE(parseHostPort("host:-1", Host, Port));
  EXPECT_FALSE(parseHostPort("host:65536", Host, Port));    // Out of range.
  EXPECT_FALSE(parseHostPort("host:123456", Host, Port));   // Too long.
}

#ifdef JSLICE_HAVE_POSIX_PROCESS

//===----------------------------------------------------------------------===//
// WriteBuffer against real sockets
//===----------------------------------------------------------------------===//

/// A connected nonblocking socket pair with tiny kernel buffers, so a
/// few KiB of writes reliably hit EAGAIN.
struct TinySocketPair {
  int A = -1, B = -1;

  TinySocketPair() {
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) == 0) {
      A = Fds[0];
      B = Fds[1];
      int Small = 1; // The kernel clamps up to its own minimum.
      ::setsockopt(A, SOL_SOCKET, SO_SNDBUF, &Small, sizeof(Small));
      ::setsockopt(B, SOL_SOCKET, SO_RCVBUF, &Small, sizeof(Small));
      setNonBlocking(A, true);
      setNonBlocking(B, true);
    }
  }
  ~TinySocketPair() {
    closeQuietly(A);
    closeQuietly(B);
  }
};

TEST(WriteBufferTest, AppendRefusesPastCapAndQueuesNothing) {
  WriteBuffer WB(/*CapBytes=*/10);
  EXPECT_TRUE(WB.append("12345"));
  EXPECT_TRUE(WB.append("67890"));
  EXPECT_EQ(WB.pending(), 10u);
  // One byte over the cap: refused whole, pending unchanged.
  EXPECT_FALSE(WB.append("x"));
  EXPECT_EQ(WB.pending(), 10u);
}

TEST(WriteBufferTest, FlushBlocksOnFullSocketThenDrains) {
  TinySocketPair P;
  ASSERT_GE(P.A, 0);

  // Far more than the shrunken kernel buffers hold.
  const std::string Chunk(1u << 20, 'x');
  WriteBuffer WB(/*CapBytes=*/0);
  ASSERT_TRUE(WB.append(Chunk));

  // First flush makes partial progress (short write) and then blocks.
  ASSERT_EQ(WB.flush(P.A), WriteBuffer::FlushResult::Blocked);
  EXPECT_GT(WB.pending(), 0u);
  EXPECT_LT(WB.pending(), Chunk.size());

  // Drain reader and writer in lockstep until everything lands.
  std::string Received;
  char Buf[65536];
  for (int Spin = 0; Spin < 100000 && Received.size() < Chunk.size();
       ++Spin) {
    int64_t R = recvSome(P.B, Buf, sizeof(Buf));
    if (R > 0)
      Received.append(Buf, static_cast<size_t>(R));
    if (!WB.empty()) {
      WriteBuffer::FlushResult FR = WB.flush(P.A);
      ASSERT_NE(FR, WriteBuffer::FlushResult::PeerClosed);
    }
  }
  EXPECT_TRUE(WB.empty());
  EXPECT_EQ(Received, Chunk);

  // A drained buffer flushes to Drained trivially.
  EXPECT_EQ(WB.flush(P.A), WriteBuffer::FlushResult::Drained);
}

TEST(WriteBufferTest, FlushReportsPeerResetMidFrame) {
  TinySocketPair P;
  ASSERT_GE(P.A, 0);

  WriteBuffer WB(/*CapBytes=*/0);
  ASSERT_TRUE(WB.append(std::string(1u << 20, 'y')));
  ASSERT_EQ(WB.flush(P.A), WriteBuffer::FlushResult::Blocked);

  // The peer dies mid-frame with unread data: the next flushes surface
  // PeerClosed (first write may still fit in the kernel buffer).
  closeQuietly(P.B);
  WriteBuffer::FlushResult FR = WriteBuffer::FlushResult::Drained;
  for (int Spin = 0; Spin < 1000; ++Spin) {
    FR = WB.flush(P.A);
    if (FR == WriteBuffer::FlushResult::PeerClosed)
      break;
  }
  EXPECT_EQ(FR, WriteBuffer::FlushResult::PeerClosed);
}

//===----------------------------------------------------------------------===//
// Frame-read deadlines under EINTR
//===----------------------------------------------------------------------===//

extern "C" void netTestSigusr1(int) {} // Interrupt syscalls, do nothing.

/// Pelts \p Target with SIGUSR1 (installed without SA_RESTART, so every
/// blocking syscall in the target keeps getting interrupted) until told
/// to stop — or until \p AutoStopMs passes, for tests whose subject
/// would never return under a perpetual storm (a hung subject then
/// shows up as a slow failure instead of a wedged test binary).
struct EintrStorm {
  pthread_t Target;
  std::atomic<bool> Stop{false};
  std::thread Pelter;

  explicit EintrStorm(pthread_t TargetThread, uint64_t AutoStopMs = 0)
      : Target(TargetThread) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = netTestSigusr1; // Deliberately no SA_RESTART.
    ::sigaction(SIGUSR1, &SA, nullptr);
    Pelter = std::thread([this, AutoStopMs] {
      auto Start = std::chrono::steady_clock::now();
      while (!Stop.load(std::memory_order_relaxed)) {
        if (AutoStopMs &&
            std::chrono::steady_clock::now() - Start >
                std::chrono::milliseconds(AutoStopMs))
          break;
        ::pthread_kill(Target, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  ~EintrStorm() {
    Stop.store(true, std::memory_order_relaxed);
    Pelter.join();
  }
};

TEST(FrameDeadlineTest, ReadFrameTimesOutUnderEintrStorm) {
  Pipe P;
  ASSERT_TRUE(P.make());

  EintrStorm Storm(::pthread_self());
  auto Start = std::chrono::steady_clock::now();
  std::string Payload;
  FrameReadStatus S = readFrame(P.ReadFd, Payload, /*TimeoutMs=*/150);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  // The storm interrupts poll() every ~200us; a naive retry that
  // restarts the full timeout after each EINTR would never return.
  EXPECT_EQ(S, FrameReadStatus::Timeout);
  EXPECT_GE(ElapsedMs, 100);
  EXPECT_LT(ElapsedMs, 5000);
}

TEST(FrameDeadlineTest, ReadFrameCompletesTrickledFrameUnderEintrStorm) {
  Pipe P;
  ASSERT_TRUE(P.make());

  EintrStorm Storm(::pthread_self());

  // A writer trickling one frame byte-by-byte: short reads and EINTR
  // interleave, and the deadline covers the whole frame.
  const std::string Payload = "{\"probe\":true}";
  std::string Frame;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Frame.append(reinterpret_cast<const char *>(&Len), 4);
  Frame.append(Payload);
  std::thread Trickler([&] {
    for (char C : Frame) {
      writeFull(P.WriteFd, &C, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::string Got;
  FrameReadStatus S = readFrame(P.ReadFd, Got, /*TimeoutMs=*/10000);
  Trickler.join();
  EXPECT_EQ(S, FrameReadStatus::Ok);
  EXPECT_EQ(Got, Payload);
}

TEST(FrameDeadlineTest, PollReadableHonorsDeadlineUnderEintrStorm) {
  Pipe P;
  ASSERT_TRUE(P.make());

  EintrStorm Storm(::pthread_self());
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(pollReadable(P.ReadFd, 120), 0);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_GE(ElapsedMs, 80);
  EXPECT_LT(ElapsedMs, 5000);
}

//===----------------------------------------------------------------------===//
// connectTcp deadlines and SO_REUSEPORT listeners
//===----------------------------------------------------------------------===//

/// A nonblocking connect left in flight (EINPROGRESS), never completed
/// by the caller; used to stuff a listener's accept queue.
int rawAsyncConnect(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  setNonBlocking(Fd, true);
  sockaddr_in A;
  std::memset(&A, 0, sizeof(A));
  A.sin_family = AF_INET;
  A.sin_port = htons(Port);
  A.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A));
  return Fd;
}

TEST(SocketTest, ConnectTimeoutHoldsUnderEintrStorm) {
  // A tiny-backlog listener that never accepts: once its queue fills,
  // further SYNs are dropped and the next connect genuinely pends in
  // poll() — exactly where the old code restarted the *full* timeout
  // after every EINTR, so a steady signal storm pushed the deadline
  // out forever.
  std::string Err;
  int ListenFd = listenTcp("127.0.0.1", 0, /*Backlog=*/1, Err);
  ASSERT_GE(ListenFd, 0) << Err;
  uint16_t Port = tcpLocalPort(ListenFd);

  std::vector<int> Fillers;
  for (int I = 0; I < 6; ++I)
    Fillers.push_back(rawAsyncConnect(Port));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The storm interrupts poll() every ~200us — far more often than the
  // 250ms budget — and auto-stops after 3s so a deadline regression
  // fails the elapsed-time assertion instead of hanging the binary.
  EintrStorm Storm(::pthread_self(), /*AutoStopMs=*/3000);
  auto Start = std::chrono::steady_clock::now();
  int Fd = connectTcp("127.0.0.1", Port, /*TimeoutMs=*/250, Err);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  EXPECT_LT(Fd, 0);
  EXPECT_EQ(Err, "connect timed out");
  EXPECT_GE(ElapsedMs, 200);
  EXPECT_LT(ElapsedMs, 2500);

  if (Fd >= 0)
    closeQuietly(Fd);
  for (int F : Fillers)
    closeQuietly(F);
  closeQuietly(ListenFd);
}

TEST(SocketTest, ListenTcpReusePortAllowsSecondListener) {
  std::string Err;
  int A = listenTcp("127.0.0.1", 0, 8, Err, /*ReusePort=*/true);
#ifndef SO_REUSEPORT
  EXPECT_LT(A, 0);
  GTEST_SKIP() << "SO_REUSEPORT unavailable: " << Err;
#endif
  ASSERT_GE(A, 0) << Err;
  uint16_t Port = tcpLocalPort(A);

  // A second REUSEPORT listener shares the port; a plain listener is
  // still refused (the flag must be deliberate on every socket).
  int B = listenTcp("127.0.0.1", Port, 8, Err, /*ReusePort=*/true);
  EXPECT_GE(B, 0) << Err;
  int C = listenTcp("127.0.0.1", Port, 8, Err, /*ReusePort=*/false);
  EXPECT_LT(C, 0);

  closeQuietly(A);
  closeQuietly(B);
  closeQuietly(C);
}

//===----------------------------------------------------------------------===//
// storeMaxRelaxed under contention
//===----------------------------------------------------------------------===//

TEST(StoreMaxTest, ConcurrentWritersNeverLoseTheMaximum) {
  // The load-then-store idiom this replaces loses exactly one race: a
  // writer that loaded a stale mark clobbers a larger value another
  // thread published in between — and every later update that is
  // *smaller* than the lost maximum then leaves the damage in place
  // forever. Stage that race over and over: a ramp thread publishes
  // ascending small values while this thread drops the true maximum
  // somewhere in the middle of the ramp; whatever interleaving the
  // scheduler picks, the mark must still read the maximum afterwards.
  const uint64_t Huge = uint64_t(1) << 30;
  const uint64_t Ramp = 200000; // All far below Huge.
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::atomic<uint64_t> Mark{0};
    std::atomic<bool> Go{false};
    std::thread Ramper([&] {
      Go.store(true, std::memory_order_relaxed);
      for (uint64_t I = 1; I <= Ramp; ++I)
        storeMaxRelaxed(Mark, I);
    });
    while (!Go.load(std::memory_order_relaxed))
      std::this_thread::yield();
    storeMaxRelaxed(Mark, Huge);
    Ramper.join();
    ASSERT_EQ(Mark.load(), Huge) << "lost the maximum on trial " << Trial;
  }
}

//===----------------------------------------------------------------------===//
// TcpServer end to end
//===----------------------------------------------------------------------===//

const char *TinyProgram = "read(a);\nwrite(a);\n";

/// One live server on an ephemeral port: Server + TcpServer + the loop
/// thread, torn down in order on destruction.
struct LiveServer {
  std::ostringstream Unused, Log;
  Server S;
  TcpServer T;
  std::thread Loop;
  bool Started = false;

  explicit LiveServer(const TcpServerOptions &TOpts,
                      ServerOptions SOpts = ServerOptions())
      : S((SOpts.Threads = SOpts.Threads ? SOpts.Threads : 2, SOpts),
          Unused, Log),
        T(S, TOpts, Log) {
    std::string Err;
    Started = T.start(Err);
    EXPECT_TRUE(Started) << Err;
    if (Started)
      Loop = std::thread([this] { T.run(); });
  }
  ~LiveServer() {
    if (Started) {
      T.requestStop();
      Loop.join();
    }
    S.finish();
  }
  uint16_t port() const { return T.port(); }
};

/// A raw blocking client socket speaking newline-framed JSON, with a
/// poll deadline on reads so a hung test fails instead of wedging.
struct RawClient {
  int Fd = -1;
  std::string Buf;

  explicit RawClient(uint16_t Port) {
    std::string Err;
    Fd = connectTcp("127.0.0.1", Port, 2000, Err);
  }
  ~RawClient() { closeQuietly(Fd); }

  bool sendAll(const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      int64_t W = sendSome(Fd, Data.data() + Off, Data.size() - Off);
      if (W < 0)
        return false;
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  /// One line (without newline), or nullopt on timeout/EOF/error.
  std::optional<std::string> readLine(int TimeoutMs = 5000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        std::string Line = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return Line;
      }
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0 || pollReadable(Fd, Left) != 1)
        return std::nullopt;
      char Tmp[4096];
      int64_t R = recvSome(Fd, Tmp, sizeof(Tmp));
      if (R <= 0)
        return std::nullopt;
      Buf.append(Tmp, static_cast<size_t>(R));
    }
  }

  /// Abort the connection: SO_LINGER zero makes close() send RST, so
  /// the server sees POLLERR|POLLHUP (reported even with no events
  /// requested) rather than an orderly FIN.
  void hardReset() {
    if (Fd < 0)
      return;
    struct linger Lg;
    Lg.l_onoff = 1;
    Lg.l_linger = 0;
    ::setsockopt(Fd, SOL_SOCKET, SO_LINGER, &Lg, sizeof(Lg));
    closeQuietly(Fd);
    Fd = -1;
  }

  /// True when the server closed the connection (EOF) within the
  /// deadline; false on timeout.
  bool waitForClose(int TimeoutMs = 5000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      int Left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Deadline - std::chrono::steady_clock::now())
              .count());
      if (Left <= 0 || pollReadable(Fd, Left) != 1)
        return false;
      char Tmp[4096];
      int64_t R = recvSome(Fd, Tmp, sizeof(Tmp));
      if (R == 0)
        return true; // EOF.
      if (R < 0 && R != NetWouldBlock)
        return true; // Reset counts as closed too.
    }
  }
};

/// Polls \p Probe (a counter getter) until it returns \p Want or ~5s
/// pass; returns the last value seen. The peer observes a close the
/// instant the loop thread issues it, a breath before the loop's own
/// accounting is globally visible — assertions on close causes must
/// wait, not snapshot.
uint64_t waitForCount(const std::function<uint64_t()> &Probe,
                      uint64_t Want) {
  uint64_t Got = Probe();
  for (int Spin = 0; Spin < 5000 && Got != Want; ++Spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Got = Probe();
  }
  return Got;
}

std::string sliceRequest(const std::string &Id) {
  JsonValue V = JsonValue::object();
  V.set("id", Id);
  V.set("program", std::string(TinyProgram));
  V.set("line", 2);
  V.set("var", std::string("a"));
  return V.str() + "\n";
}

TEST(TcpServerTest, ServesSliceAndStatsOverOneConnection) {
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.sendAll(sliceRequest("t1")));
  std::optional<std::string> Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("\"id\":\"t1\""), std::string::npos) << *Line;

  // The same connection serves the stats control line, and the stats
  // carry the transport section this very connection shows up in.
  ASSERT_TRUE(C.sendAll("{\"stats\": true}\n"));
  Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"transport\":"), std::string::npos) << *Line;
  EXPECT_NE(Line->find("\"accepted\":1"), std::string::npos) << *Line;
}

TEST(TcpServerTest, MalformedLineIsContainedToItsConnection) {
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  RawClient Bad(L.port()), Good(L.port());
  ASSERT_GE(Bad.Fd, 0);
  ASSERT_GE(Good.Fd, 0);

  ASSERT_TRUE(Bad.sendAll("{this is not json\n"));
  std::optional<std::string> Line = Bad.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"bad-request\""), std::string::npos);

  // The bad line poisoned nothing: its own connection still serves,
  // and so does an unrelated one.
  ASSERT_TRUE(Bad.sendAll(sliceRequest("after-bad")));
  Line = Bad.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);

  ASSERT_TRUE(Good.sendAll(sliceRequest("bystander")));
  Line = Good.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);
}

TEST(TcpServerTest, OversizedLineIsRefusedAndRemainderDiscarded) {
  ServerOptions SOpts;
  SOpts.MaxLineBytes = 1024; // Shared stdin/TCP line cap, shrunk.
  LiveServer L({}, SOpts);
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);

  // 8 KiB of newline-free garbage, then a newline, then a real request.
  ASSERT_TRUE(C.sendAll(std::string(8192, 'z') + "\n"));
  std::optional<std::string> Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"shed\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("line exceeds"), std::string::npos) << *Line;

  // Exactly one refusal for the one oversized line, and the connection
  // survives to serve the next request.
  ASSERT_TRUE(C.sendAll(sliceRequest("after-oversize")));
  Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"id\":\"after-oversize\""), std::string::npos);
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);
}

TEST(TcpServerTest, DiscardingDoesNotBufferANewlineFreeFlood) {
  ServerOptions SOpts;
  SOpts.MaxLineBytes = 1024;
  LiveServer L({}, SOpts);
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);

  // Trip the cap with newline-free garbage: the refusal arrives while
  // the oversized line is still unterminated.
  ASSERT_TRUE(C.sendAll(std::string(4096, 'z')));
  std::optional<std::string> Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"shed\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("line exceeds"), std::string::npos) << *Line;

  // Keep streaming, still with no newline — 8 MiB, far past the cap.
  // The server must swallow it without retaining anything: if the
  // discard path buffered, the high-water mark would hit megabytes.
  const std::string Chunk(1u << 20, 'z');
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(C.sendAll(Chunk));

  // Ending the flood with a newline reopens the connection for a real
  // request — this also synchronizes: once the response is back, the
  // loop has processed every flooded byte.
  ASSERT_TRUE(C.sendAll("\n"));
  ASSERT_TRUE(C.sendAll(sliceRequest("after-flood")));
  Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"id\":\"after-flood\""), std::string::npos);
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);

  TransportStats S = L.T.stats();
  EXPECT_EQ(S.OversizedLines, 1u); // One line, one refusal — no spam.
  // Retention never exceeded one read chunk (64 KiB) + the cap: the
  // flood was dropped on arrival, not accumulated until its newline.
  EXPECT_LE(S.InBufHighWaterBytes, (64u << 10) + 1024u);
}

TEST(TcpServerTest, ConnectionCapShedsTheExtraConnection) {
  TcpServerOptions TOpts;
  TOpts.MaxConnections = 1;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  RawClient First(L.port());
  ASSERT_GE(First.Fd, 0);
  // Prove the first connection is established server-side before the
  // second arrives (accept order is the kernel's otherwise).
  ASSERT_TRUE(First.sendAll(sliceRequest("holder")));
  ASSERT_TRUE(First.readLine().has_value());

  RawClient Second(L.port());
  ASSERT_GE(Second.Fd, 0);
  std::optional<std::string> Line = Second.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"shed\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("connection limit"), std::string::npos) << *Line;
  EXPECT_TRUE(Second.waitForClose());

  // The held connection is unaffected.
  ASSERT_TRUE(First.sendAll(sliceRequest("still-here")));
  ASSERT_TRUE(First.readLine().has_value());
}

TEST(TcpServerTest, IdleConnectionIsClosed) {
  TcpServerOptions TOpts;
  TOpts.IdleTimeoutMs = 100;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);
  EXPECT_TRUE(C.waitForClose(5000));
  EXPECT_EQ(waitForCount([&] { return L.T.stats().IdleClosed; }, 1), 1u);
}

TEST(TcpServerTest, SlowlorisPartialLineHitsReadDeadline) {
  TcpServerOptions TOpts;
  TOpts.ReadDeadlineMs = 100;
  TOpts.IdleTimeoutMs = 0; // Isolate the deadline from the idle sweep.
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);
  // A request that never finishes its line.
  ASSERT_TRUE(C.sendAll("{\"id\": \"slow"));
  EXPECT_TRUE(C.waitForClose(5000));
  EXPECT_EQ(waitForCount([&] { return L.T.stats().DeadlineClosed; }, 1),
            1u);
}

TEST(TcpServerTest, StalledReaderIsDisconnectedOnBackpressure) {
  TcpServerOptions TOpts;
  TOpts.MaxWriteBufferBytes = 4096; // Overflow with a handful of lines.
  TOpts.SendBufferBytes = 1;        // Kernel clamps to its minimum.
  TOpts.IdleTimeoutMs = 0;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);
  // Many stats lines (each response ~1 KiB) and never read a byte:
  // kernel buffer fills, then the bounded write buffer overflows, and
  // the server disconnects us rather than buffer without bound.
  std::string Burst;
  for (int I = 0; I < 400; ++I)
    Burst += "{\"stats\": true}\n";
  C.sendAll(Burst); // Send may itself fail once the server closes.
  EXPECT_TRUE(C.waitForClose(10000));
  EXPECT_EQ(
      waitForCount([&] { return L.T.stats().BackpressureClosed; }, 1), 1u)
      << L.T.stats().toJson().str();
}

TEST(TcpServerTest, GracefulDrainFlushesInFlightResponses) {
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.sendAll(sliceRequest("drain-1")));
  // Drain flushes *in-flight* responses; a line still in the kernel
  // buffer at stop time is legitimately dropped. Make the request
  // in-flight first, then stop.
  for (int Spin = 0; Spin < 1000 && L.T.stats().LinesDispatched == 0;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(L.T.stats().LinesDispatched, 1u);
  L.T.requestStop();

  // The response for the in-flight request still arrives, then EOF.
  std::optional<std::string> Line = C.readLine(10000);
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"id\":\"drain-1\""), std::string::npos);
  EXPECT_TRUE(C.waitForClose(10000));

  L.Loop.join();
  L.Started = false;
  L.S.finish();
}

TEST(TcpServerTest, DrainNeverDispatchesRequestsArrivingAfterStop) {
  // The old reactor stopped *polling* for reads during drain but still
  // called the read path whenever POLLHUP|POLLERR showed up — which the
  // kernel reports even with no events requested — so a peer that sent
  // one last request and reset its connection got that request parsed,
  // dispatched, and executed mid-drain. Now drain reads only to detect
  // EOF/reset: the bytes are counted and dropped, never dispatched.
  TcpServerOptions TOpts;
  TOpts.Shards = 1;
  TOpts.IdleTimeoutMs = 0;
  TOpts.SendBufferBytes = 1; // Kernel clamps to its minimum.
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  // A holder that floods stats requests and never reads a byte: its
  // responses overflow the shrunken kernel buffer into the transport's
  // write buffer, so the drain stays open (nothing idle-closes it —
  // IdleTimeoutMs is off) until this test releases it.
  RawClient Holder(L.port());
  ASSERT_GE(Holder.Fd, 0);
  std::string Burst;
  for (int I = 0; I < 120; ++I)
    Burst += "{\"stats\": true}\n";
  ASSERT_TRUE(Holder.sendAll(Burst));
  ASSERT_EQ(
      waitForCount([&] { return L.T.stats().ResponsesDelivered; }, 120),
      120u);

  // A second connection, established and served before the stop.
  RawClient B(L.port());
  ASSERT_GE(B.Fd, 0);
  ASSERT_TRUE(B.sendAll(sliceRequest("pre-drain")));
  ASSERT_TRUE(B.readLine().has_value());
  const uint64_t Before = L.T.stats().LinesDispatched;

  L.T.requestStop();
  // Gate: the drain has begun once the listener stops answering.
  for (int Spin = 0; Spin < 5000; ++Spin) {
    std::string CErr;
    int Probe = connectTcp("127.0.0.1", L.port(), 250, CErr);
    if (Probe < 0)
      break;
    closeQuietly(Probe);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // B sends a NEW request mid-drain and aborts. The request bytes land
  // before the RST; pre-fix they were dispatched off the POLLHUP|POLLERR
  // wakeup.
  ASSERT_TRUE(B.sendAll(sliceRequest("mid-drain")));
  B.hardReset();

  EXPECT_EQ(waitForCount(
                [&] { return L.T.stats().DrainDiscardedBytes > 0 ? 1u : 0u; },
                1),
            1u);
  EXPECT_EQ(L.T.stats().LinesDispatched, Before);

  // Release the holder so the drain can finish.
  closeQuietly(Holder.Fd);
  Holder.Fd = -1;
  L.Loop.join();
  L.Started = false;
  L.S.finish();
  EXPECT_NE(L.Log.str().find("TCP drain complete"), std::string::npos)
      << L.Log.str();
}

//===----------------------------------------------------------------------===//
// Sharded transport
//===----------------------------------------------------------------------===//

TEST(ShardedTcpServerTest, HandoffPinsConnectionsRoundRobinAndStatsMerge) {
  TcpServerOptions TOpts;
  TOpts.Shards = 2;
  TOpts.AcceptMode = TcpAcceptMode::Handoff;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);
  EXPECT_EQ(L.T.shardCount(), 2u);
  EXPECT_FALSE(L.T.usesReusePort());

  // Serial connect+request+response keeps the accept order (and so the
  // round-robin placement) deterministic.
  std::vector<std::unique_ptr<RawClient>> Cs;
  for (int I = 0; I < 6; ++I) {
    Cs.push_back(std::make_unique<RawClient>(L.port()));
    ASSERT_GE(Cs.back()->Fd, 0);
    ASSERT_TRUE(Cs.back()->sendAll(sliceRequest("h" + std::to_string(I))));
    ASSERT_TRUE(Cs.back()->readLine().has_value());
  }

  EXPECT_EQ(waitForCount([&] { return L.T.stats().Accepted; }, 6), 6u);
  EXPECT_EQ(L.T.shardStats(0).Accepted, 3u);
  EXPECT_EQ(L.T.shardStats(1).Accepted, 3u);

  // The merged view is the per-shard sum (max for the high-water mark).
  TransportStats M = L.T.stats();
  uint64_t SumAccepted = 0, SumDispatched = 0, SumDelivered = 0,
           MaxHighWater = 0;
  for (unsigned I = 0; I < L.T.shardCount(); ++I) {
    TransportStats S = L.T.shardStats(I);
    SumAccepted += S.Accepted;
    SumDispatched += S.LinesDispatched;
    SumDelivered += S.ResponsesDelivered;
    if (S.InBufHighWaterBytes > MaxHighWater)
      MaxHighWater = S.InBufHighWaterBytes;
  }
  EXPECT_EQ(M.Accepted, SumAccepted);
  EXPECT_EQ(M.LinesDispatched, SumDispatched);
  EXPECT_EQ(M.ResponsesDelivered, SumDelivered);
  EXPECT_EQ(M.InBufHighWaterBytes, MaxHighWater);
}

TEST(ShardedTcpServerTest, ReusePortShardsServeAndMergeStats) {
  TcpServerOptions TOpts;
  TOpts.Shards = 2;
  TOpts.AcceptMode = TcpAcceptMode::ReusePort;
  std::ostringstream Unused, Log;
  ServerOptions SOpts;
  SOpts.Threads = 2;
  Server S(SOpts, Unused, Log);
  TcpServer T(S, TOpts, Log);
  std::string Err;
  if (!T.start(Err)) {
    S.finish();
    GTEST_SKIP() << "SO_REUSEPORT unavailable: " << Err;
  }
  EXPECT_TRUE(T.usesReusePort());
  EXPECT_EQ(T.shardCount(), 2u);
  std::thread Loop([&] { T.run(); });

  // The kernel decides placement; assert service and merged accounting,
  // not distribution.
  for (int I = 0; I < 6; ++I) {
    RawClient C(T.port());
    ASSERT_GE(C.Fd, 0);
    ASSERT_TRUE(C.sendAll(sliceRequest("r" + std::to_string(I))));
    std::optional<std::string> Line = C.readLine();
    ASSERT_TRUE(Line.has_value());
    EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);
  }
  EXPECT_EQ(waitForCount([&] { return T.stats().Accepted; }, 6), 6u);
  uint64_t SumAccepted = 0;
  for (unsigned I = 0; I < T.shardCount(); ++I)
    SumAccepted += T.shardStats(I).Accepted;
  EXPECT_EQ(SumAccepted, 6u);

  T.requestStop();
  Loop.join();
  S.finish();
}

TEST(ShardedTcpServerTest, SlowPeerOnOneShardDoesNotDisturbAnother) {
  TcpServerOptions TOpts;
  TOpts.Shards = 2;
  TOpts.AcceptMode = TcpAcceptMode::Handoff;
  TOpts.ReadDeadlineMs = 150;
  TOpts.IdleTimeoutMs = 0;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  RawClient A(L.port()); // First accept: shard 0.
  ASSERT_GE(A.Fd, 0);
  ASSERT_TRUE(A.sendAll(sliceRequest("a0")));
  ASSERT_TRUE(A.readLine().has_value());
  RawClient B(L.port()); // Second accept: shard 1.
  ASSERT_GE(B.Fd, 0);
  ASSERT_TRUE(B.sendAll(sliceRequest("b0")));
  ASSERT_TRUE(B.readLine().has_value());

  // A turns slowloris: a line that never completes. Its *own* shard
  // applies the read deadline; B's shard never notices.
  ASSERT_TRUE(A.sendAll("{\"id\": \"sl"));
  EXPECT_TRUE(A.waitForClose(5000));
  EXPECT_EQ(
      waitForCount([&] { return L.T.shardStats(0).DeadlineClosed; }, 1),
      1u);
  EXPECT_EQ(L.T.shardStats(1).DeadlineClosed, 0u);

  ASSERT_TRUE(B.sendAll(sliceRequest("b1")));
  std::optional<std::string> Line = B.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);
}

TEST(ShardedTcpServerTest, ConnectionBudgetIsGlobalAcrossShards) {
  TcpServerOptions TOpts;
  TOpts.Shards = 2;
  TOpts.AcceptMode = TcpAcceptMode::Handoff;
  TOpts.MaxConnections = 2;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  // Two connections land on two different shards and exhaust the
  // *global* budget — a per-shard cap of 2 would admit four.
  RawClient C1(L.port()), C2(L.port());
  ASSERT_GE(C1.Fd, 0);
  ASSERT_GE(C2.Fd, 0);
  ASSERT_TRUE(C1.sendAll(sliceRequest("c1")));
  ASSERT_TRUE(C1.readLine().has_value());
  ASSERT_TRUE(C2.sendAll(sliceRequest("c2")));
  ASSERT_TRUE(C2.readLine().has_value());
  EXPECT_EQ(L.T.shardStats(0).Accepted, 1u);
  EXPECT_EQ(L.T.shardStats(1).Accepted, 1u);

  RawClient C3(L.port());
  ASSERT_GE(C3.Fd, 0);
  std::optional<std::string> Line = C3.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"shed\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("connection limit"), std::string::npos) << *Line;
  EXPECT_TRUE(C3.waitForClose());
  EXPECT_EQ(L.T.stats().RefusedAtCap, 1u);

  // Closing one admitted connection releases its slot to *any* shard.
  closeQuietly(C2.Fd);
  C2.Fd = -1;
  EXPECT_EQ(waitForCount([&] { return L.T.stats().Active; }, 1), 1u);
  RawClient C4(L.port());
  ASSERT_GE(C4.Fd, 0);
  ASSERT_TRUE(C4.sendAll(sliceRequest("c4")));
  Line = C4.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos) << *Line;
}

TEST(ShardedTcpServerTest, DrainCoordinatesAcrossAllShards) {
  TcpServerOptions TOpts;
  TOpts.Shards = 3;
  TOpts.AcceptMode = TcpAcceptMode::Handoff;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  // One served connection per shard (round-robin), then stop: every
  // shard must flush and close its own connection, and run() returns
  // only after all three report a quiet drain.
  RawClient C0(L.port()), C1(L.port()), C2(L.port());
  for (RawClient *C : {&C0, &C1, &C2}) {
    ASSERT_GE(C->Fd, 0);
    ASSERT_TRUE(C->sendAll(sliceRequest("d")));
    ASSERT_TRUE(C->readLine().has_value());
  }
  EXPECT_EQ(L.T.shardStats(0).Accepted, 1u);
  EXPECT_EQ(L.T.shardStats(1).Accepted, 1u);
  EXPECT_EQ(L.T.shardStats(2).Accepted, 1u);

  L.T.requestStop();
  EXPECT_TRUE(C0.waitForClose(10000));
  EXPECT_TRUE(C1.waitForClose(10000));
  EXPECT_TRUE(C2.waitForClose(10000));
  L.Loop.join();
  L.Started = false;
  L.S.finish();
  EXPECT_NE(L.Log.str().find("TCP drain complete across 3 shards"),
            std::string::npos)
      << L.Log.str();
}

//===----------------------------------------------------------------------===//
// ClientConnection retries
//===----------------------------------------------------------------------===//

TEST(ClientTest, RetriesPastConnectionsDroppedBeforeResponding) {
  // A hand-rolled flaky endpoint: kills the first two connections
  // without answering, then answers the third properly.
  std::string Err;
  int ListenFd = listenTcp("127.0.0.1", 0, 8, Err);
  ASSERT_GE(ListenFd, 0) << Err;
  uint16_t Port = tcpLocalPort(ListenFd);

  std::thread Flaky([&] {
    for (int ConnNo = 0; ConnNo < 3; ++ConnNo) {
      int Fd = -1;
      while (Fd < 0) {
        if (pollReadable(ListenFd, 5000) != 1)
          return;
        Fd = acceptTcp(ListenFd);
      }
      if (ConnNo < 2) {
        closeQuietly(Fd); // Drop without a byte: torn response.
        continue;
      }
      // Read one line, answer one line.
      std::string In;
      char Tmp[4096];
      while (In.find('\n') == std::string::npos) {
        if (pollReadable(Fd, 5000) != 1)
          break;
        int64_t R = recvSome(Fd, Tmp, sizeof(Tmp));
        if (R <= 0)
          break;
        In.append(Tmp, static_cast<size_t>(R));
      }
      setNonBlocking(Fd, false);
      const char *Reply = "{\"status\":\"ok\"}\n";
      sendSome(Fd, Reply, std::strlen(Reply));
      closeQuietly(Fd);
    }
  });

  ClientOptions COpts;
  COpts.Port = Port;
  COpts.MaxAttempts = 4;
  COpts.BackoffBaseMs = 1;
  COpts.BackoffCapMs = 5;
  COpts.JitterSeed = 7;
  ClientConnection CC(COpts);
  ClientResult R = CC.request("{\"probe\":1}");
  Flaky.join();
  closeQuietly(ListenFd);

  EXPECT_TRUE(R.Ok) << R.TransportError;
  EXPECT_EQ(R.Response, "{\"status\":\"ok\"}");
  EXPECT_EQ(R.Attempts, 3u);
}

TEST(ClientTest, BoundedRetriesReportTransportFailure) {
  // Nothing listens here: bind an ephemeral port, then close it so
  // connects are refused deterministically.
  std::string Err;
  int Fd = listenTcp("127.0.0.1", 0, 1, Err);
  ASSERT_GE(Fd, 0) << Err;
  uint16_t DeadPort = tcpLocalPort(Fd);
  closeQuietly(Fd);

  ClientOptions COpts;
  COpts.Port = DeadPort;
  COpts.MaxAttempts = 3;
  COpts.ConnectTimeoutMs = 500;
  COpts.BackoffBaseMs = 1;
  COpts.BackoffCapMs = 2;
  COpts.JitterSeed = 7;
  ClientConnection CC(COpts);
  ClientResult R = CC.request("{\"probe\":1}");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Attempts, 3u);
  EXPECT_FALSE(R.TransportError.empty());
}

TEST(ClientTest, EndToEndAgainstLiveServer) {
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  ClientOptions COpts;
  COpts.Port = L.port();
  COpts.JitterSeed = 7;
  ClientConnection CC(COpts);
  ClientResult R = CC.request(sliceRequest("cli-1").substr(
      0, sliceRequest("cli-1").size() - 1)); // request() appends \n.
  ASSERT_TRUE(R.Ok) << R.TransportError;
  EXPECT_NE(R.Response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_EQ(CC.reconnects(), 0u);
}

TEST(ClientTest, RecognizesRetriableInFlightResponses) {
  EXPECT_TRUE(isRetriableInFlight(
      "{\"error\":\"request id already in flight\","
      "\"status\":\"bad-request\"}"));
  // Field order and extra envelope fields don't matter — only the
  // parsed `status` and `error` values do.
  EXPECT_TRUE(isRetriableInFlight(
      "{\"id\":\"r7\",\"status\":\"bad-request\","
      "\"error\":\"request id already in flight\"}"));
  EXPECT_FALSE(isRetriableInFlight(
      "{\"error\":\"missing field\",\"status\":\"bad-request\"}"));
  EXPECT_FALSE(isRetriableInFlight("{\"status\":\"ok\"}"));
}

TEST(ClientTest, MagicStringsInsideBodiesAreNotRetriable) {
  // The old substring match scanned the whole response line, so a
  // served request whose *program text* (or any echoed field) happened
  // to contain both magic strings was misread as "still in flight" and
  // silently resubmitted. Matching the parsed envelope fields instead
  // makes these inert.
  EXPECT_FALSE(isRetriableInFlight(
      "{\"id\":\"ok-1\",\"status\":\"ok\",\"program\":"
      "\"s = \\\"request id already in flight\\\"; "
      "t = \\\"bad-request\\\";\"}"));
  // The magic error under a *different* status, and vice versa.
  EXPECT_FALSE(isRetriableInFlight(
      "{\"error\":\"request id already in flight\","
      "\"status\":\"internal\"}"));
  EXPECT_FALSE(isRetriableInFlight(
      "{\"error\":\"parse failed near 'request id already in flight' "
      "(bad-request)\",\"status\":\"shed\"}"));
  // Non-JSON lines containing both strings are transport noise, not a
  // retry signal.
  EXPECT_FALSE(isRetriableInFlight(
      "request id already in flight bad-request"));
  EXPECT_FALSE(isRetriableInFlight(""));
}

TEST(ClientTest, RetryBudgetBoundsTheBackoffLadder) {
  // A dead endpoint with a generous attempt count but a small wall-
  // clock budget: the request must fail fast, clipped by the budget,
  // not sleep through the whole exponential ladder.
  std::string Err;
  int Fd = listenTcp("127.0.0.1", 0, 1, Err);
  ASSERT_GE(Fd, 0) << Err;
  uint16_t DeadPort = tcpLocalPort(Fd);
  closeQuietly(Fd);

  ClientOptions COpts;
  COpts.Port = DeadPort;
  COpts.MaxAttempts = 64;
  COpts.ConnectTimeoutMs = 500;
  COpts.BackoffBaseMs = 200;
  COpts.BackoffCapMs = 2000;
  COpts.RetryBudgetMs = 250;
  COpts.JitterSeed = 7;
  ClientConnection CC(COpts);
  auto T0 = std::chrono::steady_clock::now();
  ClientResult R = CC.request("{\"probe\":1}");
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(CC.budgetExhausted());
  EXPECT_LT(R.Attempts, 64u) << "the budget, not the attempt count, "
                                "must stop the ladder";
  // Refused local connects are immediate, so the spend is backoff
  // sleeps: budget plus one clipped sleep plus slack, well under the
  // unbounded ladder's multi-second total.
  EXPECT_LT(ElapsedMs, 2000);

  // Budget 0 restores the legacy contract: attempts bound the ladder
  // and the budget flag stays clear.
  COpts.RetryBudgetMs = 0;
  COpts.MaxAttempts = 3;
  COpts.BackoffBaseMs = 1;
  COpts.BackoffCapMs = 2;
  ClientConnection Legacy(COpts);
  ClientResult R2 = Legacy.request("{\"probe\":2}");
  EXPECT_FALSE(R2.Ok);
  EXPECT_EQ(R2.Attempts, 3u);
  EXPECT_FALSE(Legacy.budgetExhausted());
}

TEST(ClientTest, FailsOverToTheNextEndpointAndServes) {
  // Endpoint failover: the primary in the list is dead, the standby is
  // live. The transport failure must rotate, resubmit, and succeed —
  // the jslice_client --connect A --connect B contract.
  std::string Err;
  int Fd = listenTcp("127.0.0.1", 0, 1, Err);
  ASSERT_GE(Fd, 0) << Err;
  uint16_t DeadPort = tcpLocalPort(Fd);
  closeQuietly(Fd);

  LiveServer L({});
  ASSERT_TRUE(L.Started);

  ClientOptions COpts;
  COpts.Endpoints = {"127.0.0.1:" + std::to_string(DeadPort),
                     "127.0.0.1:" + std::to_string(L.port())};
  COpts.MaxAttempts = 4;
  COpts.ConnectTimeoutMs = 500;
  COpts.BackoffBaseMs = 1;
  COpts.BackoffCapMs = 5;
  COpts.JitterSeed = 7;
  ClientConnection CC(COpts);
  EXPECT_EQ(CC.currentEndpoint(),
            "127.0.0.1:" + std::to_string(DeadPort));
  std::string Line = sliceRequest("fo-1");
  Line.pop_back(); // request() appends the newline.
  ClientResult R = CC.request(Line);
  ASSERT_TRUE(R.Ok) << R.TransportError;
  EXPECT_NE(R.Response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_GE(CC.failovers(), 1u);
  EXPECT_EQ(CC.currentEndpoint(),
            "127.0.0.1:" + std::to_string(L.port()));

  // Subsequent requests stick to the endpoint that worked.
  ClientResult R2 = CC.request(Line);
  EXPECT_TRUE(R2.Ok) << R2.TransportError;
  EXPECT_EQ(R2.Attempts, 1u);
}

//===----------------------------------------------------------------------===//
// StandbyTail: replication stream consumer against a live primary
//===----------------------------------------------------------------------===//

TEST(StandbyTailTest, TailsALivePrimaryIntoAVerifiableReplica) {
  // End to end over real sockets: a journaled primary with a sync-ack
  // hub, a StandbyTail applying into a replica journal, and the
  // primary's admission released by the tail's durable ack.
  std::string JPath = ::testing::TempDir() + "jslice_tail_primary.jsonl";
  std::string RPath = ::testing::TempDir() + "jslice_tail_replica.jsonl";
  std::remove(JPath.c_str());
  std::remove(RPath.c_str());

  ServerOptions SOpts;
  SOpts.JournalPath = JPath;
  SOpts.ReplAck = ReplAckPolicy::Sync;
  SOpts.ReplAckTimeoutMs = 8000;
  LiveServer L({}, SOpts);
  ASSERT_TRUE(L.Started);

  Journal Replica;
  ASSERT_TRUE(Replica.open(RPath));
  StandbyTailOptions TOpts;
  TOpts.Port = L.port();
  StandbyTail Tail(TOpts, Replica);
  std::string Err;
  ASSERT_TRUE(Tail.start(Err)) << Err;
  ASSERT_TRUE(waitForCount(
                  [&] { return Tail.stats().Connected ? 1u : 0u; }, 1) == 1)
      << "tail never subscribed";

  // A slice served under sync policy proves the ack round-trip: the
  // response cannot have been released before the replica acked, and
  // the stats must show a wait that did NOT time out.
  RawClient C(L.port());
  ASSERT_TRUE(C.sendAll(sliceRequest("tail-1")));
  std::optional<std::string> Resp = C.readLine(10000);
  ASSERT_TRUE(Resp.has_value());
  EXPECT_NE(Resp->find("\"status\":\"ok\""), std::string::npos);

  // Both records (begin + end) land durably in the replica.
  waitForCount([&] { return Tail.stats().Applied; }, 2);
  StandbyTailStats TS = Tail.stats();
  EXPECT_GE(TS.Applied, 2u);
  EXPECT_EQ(TS.CorruptFrames, 0u);
  EXPECT_EQ(TS.PrimaryEpoch, 1u);
  EXPECT_EQ(Tail.lagRecords(), 0u);

  ReplicationCounters RC = L.S.stats().Repl;
  EXPECT_GE(RC.SyncWaits, 1u);
  EXPECT_EQ(RC.SyncTimeouts, 0u)
      << "a healthy standby must ack within the admission wait";

  Tail.stop();
  JournalScan Scan = scanJournalDetailed(RPath);
  EXPECT_EQ(Scan.CorruptRecords, 0u);
  EXPECT_TRUE(Scan.InFlight.empty())
      << "the end record must have replicated too";
  std::remove(JPath.c_str());
  std::remove(RPath.c_str());
}

//===----------------------------------------------------------------------===//
// ChaosProxy
//===----------------------------------------------------------------------===//

TEST(ChaosProxyTest, FaultFreeProxyIsTransparent) {
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  ChaosOptions COpts; // All permilles default to 0.
  COpts.UpstreamPort = L.port();
  COpts.Seed = 11;
  ChaosProxy Proxy(COpts);
  std::string Err;
  ASSERT_TRUE(Proxy.start(Err)) << Err;

  ClientOptions CliOpts;
  CliOpts.Port = Proxy.port();
  CliOpts.JitterSeed = 7;
  ClientConnection CC(CliOpts);
  for (int I = 0; I < 5; ++I) {
    std::string Req = sliceRequest("px-" + std::to_string(I));
    ClientResult R = CC.request(Req.substr(0, Req.size() - 1));
    ASSERT_TRUE(R.Ok) << R.TransportError;
    EXPECT_NE(R.Response.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_EQ(R.Attempts, 1u);
  }
  CC.disconnect();
  Proxy.stop();
  ChaosStats CS = Proxy.stats();
  EXPECT_GE(CS.Connections, 1u);
  EXPECT_GT(CS.BytesForwarded, 0u);
  EXPECT_EQ(CS.Resets + CS.Truncations + CS.Stalls + CS.Delays, 0u);
}

TEST(ChaosProxyTest, AlwaysResetFaultsSurfaceAsTransportFailures) {
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  ChaosOptions COpts;
  COpts.UpstreamPort = L.port();
  COpts.ResetPermille = 1000; // Every response chunk resets.
  COpts.Seed = 11;
  ChaosProxy Proxy(COpts);
  std::string Err;
  ASSERT_TRUE(Proxy.start(Err)) << Err;

  ClientOptions CliOpts;
  CliOpts.Port = Proxy.port();
  CliOpts.MaxAttempts = 3;
  CliOpts.BackoffBaseMs = 1;
  CliOpts.BackoffCapMs = 2;
  CliOpts.JitterSeed = 7;
  ClientConnection CC(CliOpts);
  ClientResult R = CC.request("{\"stats\": true}");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Attempts, 3u);

  CC.disconnect();
  Proxy.stop();
  EXPECT_GE(Proxy.stats().Resets, 3u);
}

TEST(ChaosProxyTest, RetriesRecoverThroughIntermittentResets) {
  // Probabilistic faults, deterministic seed: with 200 permille resets
  // and 10 attempts per request, every request lands. This is the
  // netchaos soak in miniature.
  LiveServer L({});
  ASSERT_TRUE(L.Started);

  ChaosOptions COpts;
  COpts.UpstreamPort = L.port();
  COpts.ResetPermille = 200;
  COpts.TruncatePermille = 100;
  COpts.Seed = 11;
  ChaosProxy Proxy(COpts);
  std::string Err;
  ASSERT_TRUE(Proxy.start(Err)) << Err;

  ClientOptions CliOpts;
  CliOpts.Port = Proxy.port();
  CliOpts.MaxAttempts = 10;
  CliOpts.BackoffBaseMs = 1;
  CliOpts.BackoffCapMs = 4;
  CliOpts.JitterSeed = 7;
  ClientConnection CC(CliOpts);
  unsigned Retried = 0;
  for (int I = 0; I < 20; ++I) {
    std::string Req = sliceRequest("rx-" + std::to_string(I));
    ClientResult R = CC.request(Req.substr(0, Req.size() - 1));
    ASSERT_TRUE(R.Ok) << "request " << I << ": " << R.TransportError;
    EXPECT_NE(R.Response.find("\"id\":\"rx-" + std::to_string(I) + "\""),
              std::string::npos);
    Retried += R.Attempts - 1;
  }
  CC.disconnect();
  Proxy.stop();
  // With these rates some fault must have fired across 20 requests.
  ChaosStats CS = Proxy.stats();
  EXPECT_GT(CS.Resets + CS.Truncations, 0u);
  EXPECT_GT(Retried, 0u);
}

//===----------------------------------------------------------------------===//
// Hot-restart plumbing: fd passing, health answers, inherited listeners
//===----------------------------------------------------------------------===//

TEST(SocketTest, FdPassingTransfersAWorkingDescriptor) {
  // The SCM_RIGHTS fallback path of the generation handoff: the
  // received descriptor must reference the same open file description
  // as the sent one, surviving the sender closing its copy.
  int Pair[2];
  ASSERT_TRUE(makeSocketPair(Pair));
  int Pipe[2];
  ASSERT_EQ(::pipe(Pipe), 0);

  ASSERT_TRUE(sendFdOverSocket(Pair[0], Pipe[0]));
  int Got = recvFdOverSocket(Pair[1], 2000);
  ASSERT_GE(Got, 0);

  // sendFdOverSocket dups internally: the original read end can go
  // away and the transferred descriptor still drains the pipe.
  ::close(Pipe[0]);
  const char Msg[] = "handoff";
  ASSERT_EQ(::write(Pipe[1], Msg, sizeof(Msg)),
            static_cast<ssize_t>(sizeof(Msg)));
  char Back[16] = {};
  ASSERT_EQ(::read(Got, Back, sizeof(Back)),
            static_cast<ssize_t>(sizeof(Msg)));
  EXPECT_STREQ(Back, "handoff");

  ::close(Got);
  ::close(Pipe[1]);
  ::close(Pair[0]);
  ::close(Pair[1]);
}

TEST(SocketTest, RecvFdTimesOutWhenNothingIsSent) {
  // A successor waiting on a predecessor that never sends must get a
  // bounded failure, not a wedge.
  int Pair[2];
  ASSERT_TRUE(makeSocketPair(Pair));
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(recvFdOverSocket(Pair[1], 50), -1);
  auto Waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  EXPECT_LT(Waited, 2000);
  ::close(Pair[0]);
  ::close(Pair[1]);
}

TEST(TcpServerTest, HealthAnswerCarriesShardHeartbeats) {
  TcpServerOptions TOpts;
  TOpts.Shards = 2;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);

  RawClient C(L.port());
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.sendAll("{\"health\": true}\n"));
  std::optional<std::string> Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("\"transport\""), std::string::npos) << *Line;
  EXPECT_NE(Line->find("\"shard_heartbeat_ages_ms\""), std::string::npos)
      << *Line;
  EXPECT_NE(Line->find("\"shards\":2"), std::string::npos) << *Line;
  // Live loops, default 5s wedge threshold: nothing is wedged, so the
  // probe answer must not be degraded.
  EXPECT_EQ(Line->find("\"wedged\""), std::string::npos) << *Line;
  EXPECT_EQ(Line->find("\"degraded\""), std::string::npos) << *Line;
  EXPECT_FALSE(L.T.anyShardWedged());
}

TEST(TcpServerTest, InheritedListenerFdIsAdoptedAndServes) {
  // The handoff's happy path in miniature: a listener bound elsewhere
  // is adopted wholesale — same port, no re-bind — and serves.
  std::string Err;
  int Fd = listenTcp("127.0.0.1", 0, /*Backlog=*/16, Err,
                     /*ReusePort=*/true);
  ASSERT_GE(Fd, 0) << Err;
  uint16_t Port = tcpLocalPort(Fd);
  ASSERT_NE(Port, 0);

  TcpServerOptions TOpts;
  TOpts.InheritedListenerFd = Fd;
  LiveServer L(TOpts);
  ASSERT_TRUE(L.Started);
  EXPECT_EQ(L.port(), Port);

  RawClient C(Port);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.sendAll(sliceRequest("inherit-1")));
  std::optional<std::string> Line = C.readLine();
  ASSERT_TRUE(Line.has_value());
  EXPECT_NE(Line->find("\"id\":\"inherit-1\""), std::string::npos);
  EXPECT_NE(Line->find("\"status\":\"ok\""), std::string::npos);
}

#endif // JSLICE_HAVE_POSIX_PROCESS

} // namespace
