//===- tests/InterpreterTest.cpp - Projection interpreter tests ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

std::vector<int64_t> outputOf(const Analysis &A,
                              std::vector<int64_t> Input = {}) {
  ExecOptions Opts;
  Opts.Input = std::move(Input);
  ExecResult R = runOriginal(A, /*CriterionNode=*/0, {}, Opts);
  EXPECT_TRUE(R.Completed);
  return R.Output;
}

TEST(InterpreterTest, StraightLineArithmetic) {
  Analysis A = analyzeOk("x = 2 + 3 * 4;\ny = x - 1;\nwrite(x);\nwrite(y);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{14, 13}));
}

TEST(InterpreterTest, UninitializedVariablesAreZero) {
  Analysis A = analyzeOk("write(never_set);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{0}));
}

TEST(InterpreterTest, DivisionAndRemainderByZeroYieldZero) {
  Analysis A = analyzeOk("write(7 / 0);\nwrite(7 % 0);\nwrite(7 / 2);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{0, 0, 3}));
}

TEST(InterpreterTest, UnaryAndLogicalOperators) {
  Analysis A = analyzeOk("write(-5);\nwrite(!0);\nwrite(!7);\n"
                         "write(1 && 2);\nwrite(0 || 0);\nwrite(3 || 0);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{-5, 1, 0, 1, 0, 1}));
}

TEST(InterpreterTest, ComparisonOperators) {
  Analysis A = analyzeOk("write(1 < 2);\nwrite(2 <= 1);\nwrite(3 > 2);\n"
                         "write(2 >= 3);\nwrite(4 == 4);\nwrite(4 != 4);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{1, 0, 1, 0, 1, 0}));
}

TEST(InterpreterTest, ReadsConsumeInputAndEofTracksIt) {
  Analysis A = analyzeOk("while (!eof()) {\nread(x);\nwrite(x * 2);\n}\n");
  EXPECT_EQ(outputOf(A, {1, 2, 3}), (std::vector<int64_t>{2, 4, 6}));
  EXPECT_EQ(outputOf(A, {}), (std::vector<int64_t>{}));
}

TEST(InterpreterTest, ReadPastEndYieldsZero) {
  Analysis A = analyzeOk("read(x);\nread(y);\nwrite(x);\nwrite(y);\n");
  EXPECT_EQ(outputOf(A, {9}), (std::vector<int64_t>{9, 0}));
}

TEST(InterpreterTest, IntrinsicCallsAreDeterministic) {
  Analysis A = analyzeOk("write(f1(3));\nwrite(f1(3));\nwrite(f2(3));\n");
  std::vector<int64_t> Out = outputOf(A);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0], Out[1]) << "same intrinsic, same args, same value";
  EXPECT_GE(Out[0], -100);
  EXPECT_LE(Out[0], 100);
}

TEST(InterpreterTest, LoopsAndBreakContinue) {
  Analysis A = analyzeOk("s = 0;\n"
                         "for (i = 1; i <= 10; i = i + 1) {\n"
                         "if (i % 2 == 0) continue;\n"
                         "if (i > 7) break;\n"
                         "s = s + i;\n"
                         "}\n"
                         "write(s);\n"); // 1+3+5+7 = 16
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{16}));
}

TEST(InterpreterTest, DoWhileRunsBodyAtLeastOnce) {
  Analysis A = analyzeOk("x = 10;\ndo {\nx = x + 1;\n} while (x < 5);\n"
                         "write(x);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{11}));
}

TEST(InterpreterTest, SwitchDispatchAndFallthrough) {
  Analysis A = analyzeOk("read(c);\nt = 0;\n"
                         "switch (c) { case 1:\nt = t + 1;\ncase 2:\n"
                         "t = t + 10;\nbreak; default:\nt = t + 100;\n}\n"
                         "write(t);\n");
  EXPECT_EQ(outputOf(A, {1}), (std::vector<int64_t>{11})) << "fall-through";
  EXPECT_EQ(outputOf(A, {2}), (std::vector<int64_t>{10}));
  EXPECT_EQ(outputOf(A, {7}), (std::vector<int64_t>{100})) << "default";
}

TEST(InterpreterTest, GotoControlFlow) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  // Two positive inputs, one non-positive: positives = 2, sum = f1(-1).
  ExecOptions Opts;
  Opts.Input = {5, -1, 7};
  ExecResult R = runOriginal(A, 0, {}, Opts);
  ASSERT_TRUE(R.Completed);
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[1], 2) << "positives";
}

TEST(InterpreterTest, ReturnStopsExecutionAndEmitsValue) {
  Analysis A = analyzeOk("write(1);\nreturn 42;\nwrite(2);\n");
  EXPECT_EQ(outputOf(A), (std::vector<int64_t>{1, 42}));
}

TEST(InterpreterTest, StepLimitCatchesInfiniteLoops) {
  Analysis A = analyzeOk("while (1 == 1)\nx = x + 1;\nwrite(x);\n");
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  ExecResult R = runOriginal(A, 0, {}, Opts);
  EXPECT_FALSE(R.Completed);
  EXPECT_EQ(R.Steps, 1000u);
}

TEST(InterpreterTest, CriterionValuesAreSampledBeforeExecution) {
  Analysis A = analyzeOk("x = 1;\nx = 2;\nwrite(x);\n");
  unsigned Crit = A.cfg().nodesOnLine(3).front();
  int VarX = A.defUse().varId("x");
  ASSERT_GE(VarX, 0);
  ExecResult R =
      runOriginal(A, Crit, {static_cast<unsigned>(VarX)}, ExecOptions());
  EXPECT_EQ(R.CriterionValues, (std::vector<int64_t>{2}));
}

TEST(InterpreterTest, CriterionSampledOncePerVisit) {
  Analysis A = analyzeOk("for (i = 0; i < 3; i = i + 1)\nwrite(i);\n");
  unsigned Crit = A.cfg().nodesOnLine(2).front();
  int VarI = A.defUse().varId("i");
  ExecResult R =
      runOriginal(A, Crit, {static_cast<unsigned>(VarI)}, ExecOptions());
  EXPECT_EQ(R.CriterionValues, (std::vector<int64_t>{0, 1, 2}));
}

//===----------------------------------------------------------------------===//
// Projection semantics
//===----------------------------------------------------------------------===//

TEST(ProjectionTest, DeletedStatementFallsToLexicalSuccessor) {
  Analysis A = analyzeOk("x = 1;\nx = 2;\nwrite(x);\n");
  // Delete line 2: write sees the line-1 value.
  std::set<unsigned> Kept = {A.cfg().entry(), A.cfg().exit(),
                             A.cfg().nodesOnLine(1).front(),
                             A.cfg().nodesOnLine(3).front()};
  ExecResult R = runProjection(A, Kept, 0, {}, ExecOptions());
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1}));
}

TEST(ProjectionTest, DeletedCompoundSkipsItsWholeBody) {
  Analysis A = analyzeOk("x = 5;\nwhile (x > 0) {\nx = x - 1;\n}\n"
                         "write(x);\n");
  std::set<unsigned> Kept = {A.cfg().entry(), A.cfg().exit(),
                             A.cfg().nodesOnLine(1).front(),
                             A.cfg().nodesOnLine(5).front()};
  ExecResult R = runProjection(A, Kept, 0, {}, ExecOptions());
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Output, (std::vector<int64_t>{5}))
      << "deleting the while removes the whole loop";
}

TEST(ProjectionTest, GotoToDeletedTargetUsesNearestPostdominator) {
  Analysis A = analyzeOk(paperExample("fig10a").Source);
  // The paper's final slice {1,2,3,4,7,9}: L6 -> 7, L8 -> 9.
  SliceResult R = sliceAgrawal(A, *resolveCriterion(A, Criterion(9, {"y"})));
  std::set<unsigned> Kept = R.Nodes;
  Kept.insert(A.cfg().exit());
  ExecResult Slice = runProjection(A, Kept, R.CriterionNode,
                                   {static_cast<unsigned>(
                                       A.defUse().varId("y"))},
                                   ExecOptions());
  ExecResult Orig = runOriginal(A, R.CriterionNode,
                                {static_cast<unsigned>(
                                    A.defUse().varId("y"))},
                                ExecOptions());
  ASSERT_TRUE(Slice.Completed && Orig.Completed);
  EXPECT_EQ(Slice.CriterionValues, Orig.CriterionValues);
}

TEST(ProjectionTest, FullKeptSetEqualsOriginal) {
  Analysis A = analyzeOk(paperExample("fig5a").Source);
  ExecOptions Opts;
  Opts.Input = {3, -4, 8, 5};
  std::set<unsigned> All;
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node)
    All.insert(Node);
  ExecResult Projected = runProjection(A, All, 0, {}, Opts);
  ExecResult Original = runOriginal(A, 0, {}, Opts);
  EXPECT_EQ(Projected.Output, Original.Output);
  EXPECT_EQ(Projected.Steps, Original.Steps);
}

} // namespace
