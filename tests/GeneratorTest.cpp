//===- tests/GeneratorTest.cpp - Random program generator tests ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

TEST(GeneratorTest, IsDeterministicPerSeed) {
  GenOptions Opts;
  Opts.Seed = 42;
  EXPECT_EQ(generateProgram(Opts), generateProgram(Opts));
  GenOptions Other = Opts;
  Other.Seed = 43;
  EXPECT_NE(generateProgram(Opts), generateProgram(Other));
}

TEST(GeneratorTest, AlwaysContainsAWrite) {
  for (unsigned Seed = 1; Seed <= 20; ++Seed) {
    GenOptions Opts;
    Opts.Seed = Seed;
    Opts.TargetStmts = 3;
    EXPECT_NE(generateProgram(Opts).find("write("), std::string::npos);
  }
}

class GeneratorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratorSweep, StructuredModeParsesAnalyzesAndIsStructured) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 60;
  Opts.AllowGotos = false;
  std::string Source = generateProgram(Opts);
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue())
      << (A.hasValue() ? "" : A.diags().str()) << "\n"
      << Source;
  EXPECT_TRUE(isStructuredProgram(A->cfg(), A->lst())) << Source;
}

TEST_P(GeneratorSweep, GotoModeParsesAndAnalyzes) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 60;
  Opts.AllowGotos = true;
  std::string Source = generateProgram(Opts);
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue())
      << (A.hasValue() ? "" : A.diags().str()) << "\n"
      << Source;
}

TEST_P(GeneratorSweep, JumpFreeModeEmitsNoJumps) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.AllowGotos = false;
  Opts.AllowStructuredJumps = false;
  std::string Source = generateProgram(Opts);
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue()) << Source;
  for (unsigned Node = 0; Node != A->cfg().numNodes(); ++Node)
    EXPECT_FALSE(A->cfg().node(Node).isJump()) << Source;
}

TEST_P(GeneratorSweep, NoReturnModeEmitsNoReturns) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.AllowReturn = false;
  std::string Source = generateProgram(Opts);
  EXPECT_EQ(Source.find("return"), std::string::npos) << Source;
}

TEST_P(GeneratorSweep, NoTriviallyDeadCode) {
  // The generator never emits a statement straight after an
  // unconditional jump; residual dead code (both branches jumping) must
  // be rare. This asserts only the trivial guarantee.
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.AllowGotos = true;
  std::string Source = generateProgram(Opts);
  std::vector<std::string> Lines = splitLines(Source);
  for (size_t I = 0; I + 1 < Lines.size(); ++I) {
    bool IsJump = Lines[I].find("goto") == 0 || Lines[I] == "break;" ||
                  Lines[I] == "continue;" || Lines[I].find("return") == 0;
    if (!IsJump)
      continue;
    const std::string &Next = Lines[I + 1];
    bool NextIsStructural = Next.empty() || Next[0] == '}' ||
                            Next.find("case ") == 0 ||
                            Next.find("default:") == 0 ||
                            Next.find(": ;") != std::string::npos ||
                            Next.find("L") == 0; // labeled = reachable
    EXPECT_TRUE(NextIsStructural)
        << "statement after jump at line " << I + 1 << ":\n"
        << Source;
  }
}

TEST_P(GeneratorSweep, WriteCriteriaResolve) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  std::string Source = generateProgram(Opts);
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  std::vector<Criterion> Crits = writeCriteria(A->program());
  EXPECT_FALSE(Crits.empty());
  for (const Criterion &Crit : Crits)
    EXPECT_TRUE(resolveCriterion(*A, Crit).hasValue())
        << "line " << Crit.Line << "\n"
        << Source;
  // The reachable subset is never larger.
  EXPECT_LE(reachableWriteCriteria(*A).size(), Crits.size());
}

TEST_P(GeneratorSweep, SizeKnobTracksStatementCount) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 200;
  std::string Source = generateProgram(Opts);
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  // Compound statements add predicate/init/step nodes, so the node
  // count comfortably exceeds the simple-statement budget.
  EXPECT_GE(A->cfg().numNodes(), 150u);
  EXPECT_LE(A->cfg().numNodes(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep, ::testing::Range(1u, 26u));

} // namespace
