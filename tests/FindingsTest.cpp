//===- tests/FindingsTest.cpp - Reproduction findings as regression tests -----===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Three boundary conditions of the paper's claims surfaced while
/// reproducing it; each is pinned down here as an executable witness
/// (discussion in DESIGN.md, "Findings"):
///
///  1. C's fall-through `switch` breaks the "LST == PDT for jump-free
///     programs" identity of Section 3.
///  2. `return` statements (multi-level exits) violate Section 4's
///     property 2: a structured program exists where Figure 12 and
///     Figure 13 drop a required jump, while Figure 7 keeps it.
///  3. Unreachable jump statements void the Figure 12 == Figure 7
///     equivalence; jslice exposes detection via Cfg::unreachableNodes.
///
//===----------------------------------------------------------------------===//

#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

//===----------------------------------------------------------------------===//
// Finding 1: switch fall-through vs LST == PDT
//===----------------------------------------------------------------------===//

TEST(FindingsTest, SwitchFallthroughBreaksLstPdtIdentity) {
  // Jump-free (no break), but case 0 falls through into case 1, so the
  // switch head's postdominator dives *into* the clause region while
  // deleting the switch skips *past* it.
  // The default clause makes every dispatch pass through y = 2 (case 0
  // falls through into it), so y = 2 postdominates the switch head.
  Analysis A = analyzeOk("switch (c) { case 0:\n"
                         "x = 1;\n"
                         "default:\n"
                         "y = 2;\n"
                         "}\n"
                         "write(y);\n");
  unsigned Head = A.cfg().nodesOnLine(1).front();
  unsigned Shared = A.cfg().nodesOnLine(4).front(); // y = 2 (both paths)
  unsigned After = A.cfg().nodesOnLine(6).front();
  EXPECT_EQ(A.pdt().idom(Head), static_cast<int>(Shared))
      << "every dispatch passes through the shared fall-through suffix";
  EXPECT_EQ(A.lst().parent(Head), static_cast<int>(After))
      << "deleting the switch skips its whole body";
  EXPECT_NE(A.pdt().idom(Head), A.lst().parent(Head))
      << "LST == PDT fails on a jump-free program with fall-through";
}

//===----------------------------------------------------------------------===//
// Finding 2: returns defeat Section 4's property 2
//===----------------------------------------------------------------------===//

/// The minimal counterexample: the return on line 5 is directly control
/// dependent only on the while predicate (line 4), which the
/// conventional slice of (c, line 10) does not contain. Property 2
/// claims such a jump never needs inclusion — yet without it the slice
/// falls from the if straight into write(2), which the original skips
/// whenever c > 0.
const char *PropertyTwoCounterexample = "read(c);\n"
                                        "read(d);\n"
                                        "if (c > 0) {\n"
                                        "while (d > 0) {\n"
                                        "return;\n"
                                        "}\n"
                                        "write(1);\n"
                                        "return;\n"
                                        "}\n"
                                        "write(c);\n";

TEST(FindingsTest, CounterexampleIsStructuredWithNoDeadCode) {
  Analysis A = analyzeOk(PropertyTwoCounterexample);
  EXPECT_TRUE(isStructuredProgram(A.cfg(), A.lst()))
      << "returns are structured jumps by the paper's definition";
  EXPECT_TRUE(A.cfg().unreachableNodes().empty());
}

TEST(FindingsTest, ReturnViolatesPropertyTwo) {
  Analysis A = analyzeOk(PropertyTwoCounterexample);
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(10, {"c"}));

  SliceResult Conv = sliceConventional(A, RC);
  unsigned InnerReturn = A.cfg().nodesOnLine(5).front();
  unsigned WhileCond = A.cfg().nodesOnLine(4).front();
  ASSERT_TRUE(A.cfg().node(InnerReturn).isJump());
  EXPECT_FALSE(Conv.contains(WhileCond))
      << "the return's only controlling predicate is outside the slice";

  // Property 2 would keep the return out; Figure 7's nearest-PD vs
  // nearest-LS test correctly pulls it (and its dependences) in.
  SliceResult General = sliceAgrawal(A, RC);
  EXPECT_TRUE(General.contains(InnerReturn));
  EXPECT_TRUE(General.contains(WhileCond));

  SliceResult Single = sliceStructured(A, RC);
  SliceResult Cons = sliceConservative(A, RC);
  EXPECT_FALSE(Single.contains(InnerReturn))
      << "Figure 12 follows property 2 and drops the required return";
  EXPECT_FALSE(Cons.contains(InnerReturn))
      << "Figure 13 likewise";
  EXPECT_NE(Single.Nodes, General.Nodes)
      << "Figure 12 == Figure 7 fails on this structured program";
}

TEST(FindingsTest, DroppedReturnChangesBehaviourKeptReturnDoesNot) {
  Analysis A = analyzeOk(PropertyTwoCounterexample);
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(10, {"c"}));
  ExecOptions Opts;
  Opts.Input = {1, 1}; // c > 0 and d > 0: the original returns early.

  ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Opts);
  ASSERT_TRUE(Orig.Completed);
  ASSERT_TRUE(Orig.CriterionValues.empty()) << "write(c) never runs";

  auto RunSlice = [&](const SliceResult &R) {
    std::set<unsigned> Kept = R.Nodes;
    Kept.insert(A.cfg().exit());
    return runProjection(A, Kept, RC.Node, RC.VarIds, Opts);
  };

  ExecResult Fig7 = RunSlice(sliceAgrawal(A, RC));
  ASSERT_TRUE(Fig7.Completed);
  EXPECT_EQ(Fig7.CriterionValues, Orig.CriterionValues)
      << "Figure 7's slice is behaviour-preserving";

  ExecResult Fig12 = RunSlice(sliceStructured(A, RC));
  ASSERT_TRUE(Fig12.Completed);
  EXPECT_FALSE(Fig12.CriterionValues.empty())
      << "Figure 12's slice reaches write(c), which the original skips "
         "— the unsoundness property 2 was supposed to rule out";
}

TEST(FindingsTest, BallHorwitzAgreesWithFigure7OnTheCounterexample) {
  Analysis A = analyzeOk(PropertyTwoCounterexample);
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(10, {"c"}));
  EXPECT_EQ(sliceAgrawal(A, RC).Nodes, sliceBallHorwitz(A, RC).Nodes);
}

//===----------------------------------------------------------------------===//
// Finding 3: unreachable jumps void the equivalences
//===----------------------------------------------------------------------===//

TEST(FindingsTest, UnreachableJumpsAreDetected) {
  // write(9) and the return guarding it are dead (both branches jump).
  Analysis A = analyzeOk("while (a > 0) {\n"
                         "if (a > 1) {\n"
                         "break;\n"
                         "} else {\n"
                         "continue;\n"
                         "}\n"
                         "return;\n"
                         "}\n"
                         "write(a);\n");
  std::vector<unsigned> Dead = A.cfg().unreachableNodes();
  ASSERT_FALSE(Dead.empty());
  bool DeadJumpFound = false;
  for (unsigned Node : Dead)
    if (A.cfg().node(Node).isJump())
      DeadJumpFound = true;
  EXPECT_TRUE(DeadJumpFound) << "the stranded return is dead code";
}

//===----------------------------------------------------------------------===//
// Finding 4: switch fall-through defeats the single-traversal claim
//===----------------------------------------------------------------------===//

/// continue sits in a fall-through clause; the break after the switch
/// joins the slice during the first traversal and only then becomes the
/// continue's nearest lexical successor in the slice. No
/// (postdominates, lexically-succeeds) pair exists, yet one traversal
/// is not enough — and Figure 12's single filtered pass misses the
/// continue entirely.
const char *FallthroughCounterexample = "read(c);\n"
                                        "while (!eof()) {\n"
                                        "read(c);\n"
                                        "switch (c) { case 0:\n"
                                        "write(c);\n"
                                        "case 1:\n"
                                        "continue;\n"
                                        "case 2:\n"
                                        "write(77);\n"
                                        "}\n"
                                        "break;\n"
                                        "}\n"
                                        "write(9);\n";

TEST(FindingsTest, FallthroughSwitchNeedsTwoTraversals) {
  Analysis A = analyzeOk(FallthroughCounterexample);
  ASSERT_TRUE(isStructuredProgram(A.cfg(), A.lst()));
  ASSERT_TRUE(A.cfg().unreachableNodes().empty());

  ResolvedCriterion RC = *resolveCriterion(A, Criterion(5, {"c"}));
  SliceResult General = sliceAgrawal(A, RC);
  unsigned Continue = A.cfg().nodesOnLine(7).front();
  unsigned Break = A.cfg().nodesOnLine(11).front();
  EXPECT_TRUE(General.contains(Break));
  EXPECT_TRUE(General.contains(Continue));
  EXPECT_EQ(General.ProductiveTraversals, 2u)
      << "the break must land in the slice before the continue's test "
         "can fire";

  SliceResult Single = sliceStructured(A, RC);
  EXPECT_FALSE(Single.contains(Continue))
      << "Figure 12's single pass visits the continue too early";

  // Section 4, property 1 nominally rules this out: verify there is in
  // fact no (postdominates, lexically-succeeds) pair, so the paper's
  // multiple-traversal characterization does not cover this case.
  for (unsigned N1 = 0; N1 != A.cfg().numNodes(); ++N1)
    for (unsigned N2 = 0; N2 != A.cfg().numNodes(); ++N2) {
      if (N1 == N2 || !A.pdt().isReachable(N1) || !A.lst().inTree(N1) ||
          !A.pdt().isReachable(N2) || !A.lst().inTree(N2))
        continue;
      EXPECT_FALSE(A.pdt().dominates(N1, N2) &&
                   A.lst().isLexicalSuccessorOf(N2, N1));
    }
}

TEST(FindingsTest, DroppedContinueChangesBehaviour) {
  Analysis A = analyzeOk(FallthroughCounterexample);
  ResolvedCriterion RC = *resolveCriterion(A, Criterion(5, {"c"}));
  ExecOptions Opts;
  Opts.Input = {0, 0, 0}; // Two loop iterations through case 0.

  ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Opts);
  ASSERT_TRUE(Orig.Completed);
  EXPECT_EQ(Orig.CriterionValues, (std::vector<int64_t>{0, 0}));

  auto RunSlice = [&](const SliceResult &R) {
    std::set<unsigned> Kept = R.Nodes;
    Kept.insert(A.cfg().exit());
    return runProjection(A, Kept, RC.Node, RC.VarIds, Opts);
  };
  ExecResult Fig7 = RunSlice(sliceAgrawal(A, RC));
  ASSERT_TRUE(Fig7.Completed);
  EXPECT_EQ(Fig7.CriterionValues, Orig.CriterionValues);

  ExecResult Fig12 = RunSlice(sliceStructured(A, RC));
  ASSERT_TRUE(Fig12.Completed);
  EXPECT_NE(Fig12.CriterionValues, Orig.CriterionValues)
      << "without the continue, the slice breaks out after one visit";
}

TEST(FindingsTest, LiveProgramsReportNoUnreachableNodes) {
  Analysis A = analyzeOk("while (a > 0) {\n"
                         "if (a > 1)\n"
                         "break;\n"
                         "a = a - 1;\n"
                         "}\n"
                         "write(a);\n");
  EXPECT_TRUE(A.cfg().unreachableNodes().empty());
}

} // namespace
