//===- tests/RobustnessTest.cpp - Fuzz-style robustness tests -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The front end must never crash on garbage: random byte soup, random
/// token soup, and truncations of valid programs must either parse or
/// produce diagnostics. Analyses must hold up on degenerate but valid
/// inputs (empty program, one statement, deep nesting).
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

#include <random>

using namespace jslice;

namespace {

/// Either way — value or diagnostics — the call must return normally.
void mustNotCrash(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  if (A.hasValue())
    SUCCEED();
  else
    EXPECT_FALSE(A.diags().empty()) << "failure without diagnostics";
}

class FuzzSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSeeds, RandomBytesNeverCrashTheFrontEnd) {
  std::mt19937_64 Rng(GetParam());
  std::string Soup;
  unsigned Len = 1 + static_cast<unsigned>(Rng() % 400);
  for (unsigned I = 0; I != Len; ++I)
    Soup += static_cast<char>(Rng() % 128);
  mustNotCrash(Soup);
}

TEST_P(FuzzSeeds, RandomTokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "if",    "else", "while", "do",     "for",   "switch", "case",
      "default", "break", "continue", "return", "goto", "read", "write",
      "x",     "y",    "L1",   "42",     "(",     ")",      "{",
      "}",     ";",    ":",    ",",      "=",     "+",      "-",
      "*",     "/",    "%",    "<",      "<=",    "==",     "!=",
      "&&",    "||",   "!",
  };
  std::mt19937_64 Rng(GetParam() * 131 + 7);
  std::string Soup;
  unsigned Len = 1 + static_cast<unsigned>(Rng() % 120);
  for (unsigned I = 0; I != Len; ++I) {
    Soup += Tokens[Rng() % (sizeof(Tokens) / sizeof(Tokens[0]))];
    Soup += (Rng() % 6 == 0) ? "\n" : " ";
  }
  mustNotCrash(Soup);
}

TEST_P(FuzzSeeds, TruncatedValidProgramsNeverCrash) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 30;
  Opts.AllowGotos = true;
  std::string Source = generateProgram(Opts);
  std::mt19937_64 Rng(GetParam() * 977 + 3);
  for (unsigned Trial = 0; Trial != 8; ++Trial) {
    size_t Cut = Rng() % (Source.size() + 1);
    mustNotCrash(Source.substr(0, Cut));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(1u, 31u));

TEST(RobustnessTest, EmptyProgramAnalyzes) {
  ErrorOr<Analysis> A = Analysis::fromSource("");
  ASSERT_TRUE(A.hasValue());
  EXPECT_EQ(A->cfg().numNodes(), 2u) << "just entry and exit";
  // Slicing an empty program fails cleanly (no statement on any line).
  EXPECT_FALSE(
      computeSlice(*A, Criterion(1, {}), SliceAlgorithm::Agrawal)
          .hasValue());
}

TEST(RobustnessTest, SingleStatementProgram) {
  ErrorOr<Analysis> A = Analysis::fromSource("write(1);");
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(1, {}),
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A->cfg()), (std::set<unsigned>{1}));
}

TEST(RobustnessTest, DeeplyNestedProgramAnalyzes) {
  std::string Source;
  for (unsigned I = 0; I != 64; ++I)
    Source += "if (x > " + std::to_string(I) + ") {\n";
  Source += "write(x);\n";
  for (unsigned I = 0; I != 64; ++I)
    Source += "}\n";
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(65, {"x"}),
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A->cfg()).size(), 65u)
      << "every guard is in the slice";
}

TEST(RobustnessTest, LongStraightLineProgram) {
  std::string Source;
  for (unsigned I = 0; I != 3000; ++I)
    Source += "x = x + 1;\n";
  Source += "write(x);\n";
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(3001, {"x"}),
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A->cfg()).size(), 3001u);
}

TEST(RobustnessTest, ManyLabelsAndGotos) {
  // A chain of forward gotos, each hopping over one assignment.
  std::string Source;
  for (unsigned I = 0; I != 100; ++I) {
    Source += "goto L" + std::to_string(I) + ";\n";
    Source += "L" + std::to_string(I) + ": x = " + std::to_string(I) +
              ";\n";
  }
  Source += "write(x);\n";
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(201, {"x"}),
                                SliceAlgorithm::Agrawal);
  EXPECT_TRUE(R.lineSet(A->cfg()).count(200)) << "last assignment kept";
}

} // namespace
