//===- tests/RobustnessTest.cpp - Fuzz-style robustness tests -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// The front end must never crash on garbage: random byte soup, random
/// token soup, and truncations of valid programs must either parse or
/// produce diagnostics. Analyses must hold up on degenerate but valid
/// inputs (empty program, one statement, deep nesting).
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

#include <random>

using namespace jslice;

namespace {

/// Either way — value or diagnostics — the call must return normally.
void mustNotCrash(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  if (A.hasValue())
    SUCCEED();
  else
    EXPECT_FALSE(A.diags().empty()) << "failure without diagnostics";
}

class FuzzSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSeeds, RandomBytesNeverCrashTheFrontEnd) {
  std::mt19937_64 Rng(GetParam());
  std::string Soup;
  unsigned Len = 1 + static_cast<unsigned>(Rng() % 400);
  for (unsigned I = 0; I != Len; ++I)
    Soup += static_cast<char>(Rng() % 128);
  mustNotCrash(Soup);
}

TEST_P(FuzzSeeds, RandomTokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "if",    "else", "while", "do",     "for",   "switch", "case",
      "default", "break", "continue", "return", "goto", "read", "write",
      "x",     "y",    "L1",   "42",     "(",     ")",      "{",
      "}",     ";",    ":",    ",",      "=",     "+",      "-",
      "*",     "/",    "%",    "<",      "<=",    "==",     "!=",
      "&&",    "||",   "!",
  };
  std::mt19937_64 Rng(GetParam() * 131 + 7);
  std::string Soup;
  unsigned Len = 1 + static_cast<unsigned>(Rng() % 120);
  for (unsigned I = 0; I != Len; ++I) {
    Soup += Tokens[Rng() % (sizeof(Tokens) / sizeof(Tokens[0]))];
    Soup += (Rng() % 6 == 0) ? "\n" : " ";
  }
  mustNotCrash(Soup);
}

TEST_P(FuzzSeeds, TruncatedValidProgramsNeverCrash) {
  GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.TargetStmts = 30;
  Opts.AllowGotos = true;
  std::string Source = generateProgram(Opts);
  std::mt19937_64 Rng(GetParam() * 977 + 3);
  for (unsigned Trial = 0; Trial != 8; ++Trial) {
    size_t Cut = Rng() % (Source.size() + 1);
    mustNotCrash(Source.substr(0, Cut));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(1u, 31u));

TEST(RobustnessTest, EmptyProgramAnalyzes) {
  ErrorOr<Analysis> A = Analysis::fromSource("");
  ASSERT_TRUE(A.hasValue());
  EXPECT_EQ(A->cfg().numNodes(), 2u) << "just entry and exit";
  // Slicing an empty program fails cleanly (no statement on any line).
  EXPECT_FALSE(
      computeSlice(*A, Criterion(1, {}), SliceAlgorithm::Agrawal)
          .hasValue());
}

TEST(RobustnessTest, SingleStatementProgram) {
  ErrorOr<Analysis> A = Analysis::fromSource("write(1);");
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(1, {}),
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A->cfg()), (std::set<unsigned>{1}));
}

TEST(RobustnessTest, DeeplyNestedProgramAnalyzes) {
  std::string Source;
  for (unsigned I = 0; I != 64; ++I)
    Source += "if (x > " + std::to_string(I) + ") {\n";
  Source += "write(x);\n";
  for (unsigned I = 0; I != 64; ++I)
    Source += "}\n";
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(65, {"x"}),
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A->cfg()).size(), 65u)
      << "every guard is in the slice";
}

TEST(RobustnessTest, HundredThousandDeepNestingIsADiagNotAStackOverflow) {
  // The regression that motivated the parser depth limit: before it,
  // this recursed 100k frames deep and died by stack overflow (with
  // ASan's larger frames, far earlier). Now it must degrade to a
  // "nesting too deep" diagnostic.
  std::string Source;
  Source.reserve(100000 * 4 + 16);
  for (unsigned I = 0; I != 100000; ++I)
    Source += "{\n";
  Source += "x = 1;\n";
  for (unsigned I = 0; I != 100000; ++I)
    Source += "}\n";

  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_FALSE(A.hasValue());
  EXPECT_TRUE(A.diags().hasKind(DiagKind::ResourceExhausted))
      << A.diags().str();
  EXPECT_NE(A.diags().str().find("nesting too deep"), std::string::npos)
      << A.diags().str();
}

TEST(RobustnessTest, DeepExpressionNestingIsADiagNotAStackOverflow) {
  // Expression recursion (parens and unary operators) shares the same
  // depth meter as statements.
  std::string Source = "x = ";
  for (unsigned I = 0; I != 100000; ++I)
    Source += "(";
  Source += "1";
  for (unsigned I = 0; I != 100000; ++I)
    Source += ")";
  Source += ";\n";

  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_FALSE(A.hasValue());
  EXPECT_TRUE(A.diags().hasKind(DiagKind::ResourceExhausted))
      << A.diags().str();

  std::string Unary = "x = ";
  Unary.append(100000, '-');
  Unary += "1;\n";
  ErrorOr<Analysis> B = Analysis::fromSource(Unary);
  ASSERT_FALSE(B.hasValue());
  EXPECT_TRUE(B.diags().hasKind(DiagKind::ResourceExhausted))
      << B.diags().str();
}

TEST(RobustnessTest, NestingLimitIsConfigurableThroughTheBudget) {
  std::string Source;
  for (unsigned I = 0; I != 20; ++I)
    Source += "{\n";
  Source += "write(1);\n";
  for (unsigned I = 0; I != 20; ++I)
    Source += "}\n";

  Budget Tight;
  Tight.MaxNestingDepth = 10;
  EXPECT_FALSE(Analysis::fromSource(Source, Tight).hasValue());

  Budget Roomy;
  Roomy.MaxNestingDepth = 64;
  EXPECT_TRUE(Analysis::fromSource(Source, Roomy).hasValue());
}

TEST(RobustnessTest, StepBudgetDegradesDeterministically) {
  GenOptions Gen;
  Gen.Seed = 5;
  Gen.TargetStmts = 60;
  Gen.AllowGotos = true;
  std::string Source = generateProgram(Gen);

  Budget B;
  B.MaxSteps = 100; // Far too small for a 60-statement program.
  auto Run = [&]() {
    ErrorOr<Analysis> A = Analysis::fromSource(Source, B);
    EXPECT_FALSE(A.hasValue());
    return A.hasValue() ? std::string() : A.diags().str();
  };
  std::string First = Run();
  EXPECT_NE(First.find("step budget exhausted"), std::string::npos) << First;
  EXPECT_EQ(First, Run()) << "degradation must be deterministic";
}

TEST(RobustnessTest, NodeBudgetBoundsCfgConstruction) {
  std::string Source;
  for (unsigned I = 0; I != 200; ++I)
    Source += "x = x + 1;\n";
  Source += "write(x);\n";

  Budget B;
  B.MaxNodes = 50;
  ErrorOr<Analysis> A = Analysis::fromSource(Source, B);
  ASSERT_FALSE(A.hasValue());
  EXPECT_TRUE(A.diags().hasKind(DiagKind::ResourceExhausted));
  EXPECT_NE(A.diags().str().find("node budget exhausted"),
            std::string::npos)
      << A.diags().str();
}

TEST(RobustnessTest, ExhaustedBudgetFailsLaterSlicesToo) {
  // One Analysis, many slices: once the shared meter trips, subsequent
  // ErrorOr slices degrade instead of returning partial node sets.
  ErrorOr<Analysis> A = Analysis::fromSource("x = 1;\nwrite(x);\n");
  ASSERT_TRUE(A.hasValue());
  // Latch the live meter by hand: inject a fault into one checkpoint
  // (a zero-step budget would have refused during analysis already).
  {
    FaultInjection::ScopedArm Arm(1);
    A->guard().checkpoint("test.drain");
  }
  ASSERT_TRUE(A->guard().exhausted());
  ErrorOr<SliceResult> R =
      computeSlice(*A, Criterion(2, {"x"}), SliceAlgorithm::Agrawal);
  ASSERT_FALSE(R.hasValue());
  EXPECT_TRUE(R.diags().hasKind(DiagKind::ResourceExhausted));
}

TEST(RobustnessTest, LongStraightLineProgram) {
  std::string Source;
  for (unsigned I = 0; I != 3000; ++I)
    Source += "x = x + 1;\n";
  Source += "write(x);\n";
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(3001, {"x"}),
                                SliceAlgorithm::Agrawal);
  EXPECT_EQ(R.lineSet(A->cfg()).size(), 3001u);
}

TEST(RobustnessTest, ManyLabelsAndGotos) {
  // A chain of forward gotos, each hopping over one assignment.
  std::string Source;
  for (unsigned I = 0; I != 100; ++I) {
    Source += "goto L" + std::to_string(I) + ";\n";
    Source += "L" + std::to_string(I) + ": x = " + std::to_string(I) +
              ";\n";
  }
  Source += "write(x);\n";
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  ASSERT_TRUE(A.hasValue());
  SliceResult R = *computeSlice(*A, Criterion(201, {"x"}),
                                SliceAlgorithm::Agrawal);
  EXPECT_TRUE(R.lineSet(A->cfg()).count(200)) << "last assignment kept";
}

} // namespace
