//===- tests/ScenarioTest.cpp - Realistic end-to-end slicing scenarios --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Hand-written, realistic Mini-C programs (the kind the paper's intro
/// motivates: understanding, debugging, maintenance) with hand-reasoned
/// assertions about what their slices must and must not contain, plus
/// behavioural verification of every slice used.
///
//===----------------------------------------------------------------------===//

#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

void expectBehaviourPreserved(const Analysis &A, const Criterion &Crit,
                              SliceAlgorithm Algorithm,
                              std::vector<std::vector<int64_t>> Inputs) {
  ResolvedCriterion RC = *resolveCriterion(A, Crit);
  SliceResult R = computeSlice(A, RC, Algorithm);
  std::set<unsigned> Kept = R.Nodes;
  Kept.insert(A.cfg().exit());
  for (auto &Input : Inputs) {
    ExecOptions Opts;
    Opts.Input = std::move(Input);
    ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Opts);
    ASSERT_TRUE(Orig.Completed);
    ExecResult Sliced = runProjection(A, Kept, RC.Node, RC.VarIds, Opts);
    ASSERT_TRUE(Sliced.Completed);
    EXPECT_EQ(Sliced.CriterionValues, Orig.CriterionValues)
        << algorithmName(Algorithm);
  }
}

//===----------------------------------------------------------------------===//
// Scenario 1: grade histogram (switch + break + continue)
//===----------------------------------------------------------------------===//

const char *Histogram = /* 1*/ "pass = 0;\n"
                        /* 2*/ "fail = 0;\n"
                        /* 3*/ "invalid = 0;\n"
                        /* 4*/ "while (!eof()) {\n"
                        /* 5*/ "read(grade);\n"
                        /* 6*/ "if (grade < 0) {\n"
                        /* 7*/ "invalid = invalid + 1;\n"
                        /* 8*/ "continue;\n"
                        /* 9*/ "}\n"
                        /*10*/ "switch (grade / 10) { case 10:\n"
                        /*11*/ "pass = pass + 1;\n"
                        /*12*/ "break; case 9:\n"
                        /*13*/ "pass = pass + 1;\n"
                        /*14*/ "break; default:\n"
                        /*15*/ "fail = fail + 1;\n"
                        /*16*/ "}\n"
                        /*17*/ "}\n"
                        /*18*/ "write(pass);\n"
                        /*19*/ "write(fail);\n"
                        /*20*/ "write(invalid);\n";

TEST(HistogramScenario, SliceOnPassKeepsGuardContinueAndBothPassArms) {
  Analysis A = analyzeOk(Histogram);
  SliceResult R = *computeSlice(A, Criterion(18, {"pass"}),
                                SliceAlgorithm::Agrawal);
  std::set<unsigned> Lines = R.lineSet(A.cfg());
  // Needed: init, loop, read, guard + its continue (it decides whether
  // the switch runs), the dispatch, both pass arms, and the first
  // arm's break (without it case 10 would fall into case 9 and count
  // twice).
  for (unsigned Line : {1u, 4u, 5u, 6u, 8u, 10u, 11u, 12u, 13u})
    EXPECT_TRUE(Lines.count(Line)) << "line " << Line << " missing";
  // Irrelevant: the other counters — and, elegantly, the break on line
  // 14: deleting it falls into the (deleted) default arm and out of
  // the switch, which is where the break went anyway. Its nearest
  // postdominator and lexical successor in the slice coincide.
  for (unsigned Line : {2u, 3u, 7u, 14u, 15u, 19u, 20u})
    EXPECT_FALSE(Lines.count(Line)) << "line " << Line << " spurious";
}

TEST(HistogramScenario, SliceOnInvalidIsTiny) {
  Analysis A = analyzeOk(Histogram);
  SliceResult R = *computeSlice(A, Criterion(20, {"invalid"}),
                                SliceAlgorithm::Agrawal);
  std::set<unsigned> Lines = R.lineSet(A.cfg());
  for (unsigned Line : {3u, 4u, 5u, 6u, 7u, 20u})
    EXPECT_TRUE(Lines.count(Line)) << "line " << Line << " missing";
  // Neither the switch nor the continue matters for `invalid`: the
  // guard's continue only skips statements that don't touch it.
  for (unsigned Line : {8u, 10u, 11u, 13u, 15u, 18u, 19u})
    EXPECT_FALSE(Lines.count(Line)) << "line " << Line << " spurious";
}

TEST(HistogramScenario, SlicesAreBehaviourPreserving) {
  Analysis A = analyzeOk(Histogram);
  for (unsigned Line : {18u, 19u, 20u})
    expectBehaviourPreserved(A, Criterion(Line, {}),
                             SliceAlgorithm::Agrawal,
                             {{100, 95, 42, -3, 88},
                              {-1, -2, -3},
                              {},
                              {55, 100}});
}

//===----------------------------------------------------------------------===//
// Scenario 2: scanner state machine (backward gotos)
//===----------------------------------------------------------------------===//

const char *Scanner = /* 1*/ "tokens = 0;\n"
                      /* 2*/ "garbage = 0;\n"
                      /* 3*/ "Start: if (eof()) goto Done;\n"
                      /* 4*/ "read(c);\n"
                      /* 5*/ "if (c == 0) goto Start;\n"
                      /* 6*/ "if (c < 0) goto Junk;\n"
                      /* 7*/ "tokens = tokens + 1;\n"
                      /* 8*/ "goto Start;\n"
                      /* 9*/ "Junk: garbage = garbage + 1;\n"
                      /*10*/ "goto Start;\n"
                      /*11*/ "Done: write(tokens);\n"
                      /*12*/ "write(garbage);\n";

TEST(ScannerScenario, SliceOnTokensKeepsItsLoopJumpsOnly) {
  Analysis A = analyzeOk(Scanner);
  SliceResult R = *computeSlice(A, Criterion(11, {"tokens"}),
                                SliceAlgorithm::Agrawal);
  std::set<unsigned> Lines = R.lineSet(A.cfg());
  for (unsigned Line : {1u, 3u, 4u, 5u, 6u, 7u, 8u, 11u})
    EXPECT_TRUE(Lines.count(Line)) << "line " << Line << " missing";
  // The garbage counter is gone; its back-jump on line 10 must stay,
  // or skipping line 9 would fall from Junk into Done and terminate
  // the scan early.
  EXPECT_FALSE(Lines.count(9));
  EXPECT_TRUE(Lines.count(10))
      << "the Junk arm's goto still routes control back to Start";
  EXPECT_FALSE(Lines.count(12));
}

TEST(ScannerScenario, ConventionalSliceBreaksTheScanner) {
  Analysis A = analyzeOk(Scanner);
  Criterion Crit(11, {"tokens"});
  ResolvedCriterion RC = *resolveCriterion(A, Crit);
  SliceResult Conv = sliceConventional(A, RC);
  std::set<unsigned> Kept = Conv.Nodes;
  Kept.insert(A.cfg().exit());
  ExecOptions Opts;
  Opts.Input = {5, -1, 7}; // junk in the middle
  ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Opts);
  ExecResult Sliced = runProjection(A, Kept, RC.Node, RC.VarIds, Opts);
  ASSERT_TRUE(Orig.Completed && Sliced.Completed);
  EXPECT_NE(Sliced.CriterionValues, Orig.CriterionValues)
      << "dropping the gotos must corrupt the token count";
}

TEST(ScannerScenario, JumpAwareSlicesPreserveTheScan) {
  Analysis A = analyzeOk(Scanner);
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Agrawal, SliceAlgorithm::BallHorwitz,
        SliceAlgorithm::Lyle})
    expectBehaviourPreserved(A, Criterion(11, {"tokens"}), Algorithm,
                             {{5, -1, 7}, {0, 0, 3}, {}, {-9, -9}});
}

//===----------------------------------------------------------------------===//
// Scenario 3: bounded search with early return
//===----------------------------------------------------------------------===//

const char *Search = /* 1*/ "read(needle);\n"
                     /* 2*/ "found = 0;\n"
                     /* 3*/ "checked = 0;\n"
                     /* 4*/ "while (!eof()) {\n"
                     /* 5*/ "read(item);\n"
                     /* 6*/ "checked = checked + 1;\n"
                     /* 7*/ "if (item == needle) {\n"
                     /* 8*/ "found = 1;\n"
                     /* 9*/ "write(checked);\n"
                     /*10*/ "return;\n"
                     /*11*/ "}\n"
                     /*12*/ "}\n"
                     /*13*/ "write(found);\n";

TEST(SearchScenario, SliceOnFoundKeepsTheEarlyReturn) {
  Analysis A = analyzeOk(Search);
  SliceResult R = *computeSlice(A, Criterion(13, {"found"}),
                                SliceAlgorithm::Agrawal);
  std::set<unsigned> Lines = R.lineSet(A.cfg());
  for (unsigned Line : {1u, 2u, 4u, 5u, 7u, 10u, 13u})
    EXPECT_TRUE(Lines.count(Line)) << "line " << Line << " missing";
  EXPECT_FALSE(Lines.count(8))
      << "found=1 is dead for the criterion: when it runs, the return "
         "keeps control from ever reaching line 13";
  EXPECT_FALSE(Lines.count(3));
  EXPECT_FALSE(Lines.count(6));
  EXPECT_FALSE(Lines.count(9));
}

TEST(SearchScenario, Figure12MissesTheReturnHere) {
  // The early return guarded two levels deep is exactly the Finding-2
  // shape: its controlling predicate (line 7) IS in this slice, so
  // Figure 12 keeps it here — but the criterion at line 9's slice shows
  // the general behaviour difference.
  Analysis A = analyzeOk(Search);
  SliceResult Single = *computeSlice(A, Criterion(13, {"found"}),
                                     SliceAlgorithm::Structured);
  EXPECT_TRUE(Single.lineSet(A.cfg()).count(10))
      << "line 7 is in the slice, so property 2's precondition holds";
}

TEST(SearchScenario, SlicesAreBehaviourPreserving) {
  Analysis A = analyzeOk(Search);
  for (unsigned Line : {9u, 13u})
    expectBehaviourPreserved(A, Criterion(Line, {}),
                             SliceAlgorithm::Agrawal,
                             {{7, 1, 2, 7, 9}, {7}, {3, 3, 3}, {}});
}

//===----------------------------------------------------------------------===//
// Scenario 4: retry loop with do-while and guarded break
//===----------------------------------------------------------------------===//

const char *Retry = /* 1*/ "attempts = 0;\n"
                    /* 2*/ "ok = 0;\n"
                    /* 3*/ "do {\n"
                    /* 4*/ "attempts = attempts + 1;\n"
                    /* 5*/ "read(status);\n"
                    /* 6*/ "if (status == 0) {\n"
                    /* 7*/ "ok = 1;\n"
                    /* 8*/ "break;\n"
                    /* 9*/ "}\n"
                    /*10*/ "} while (attempts < 3);\n"
                    /*11*/ "write(ok);\n"
                    /*12*/ "write(attempts);\n";

TEST(RetryScenario, SliceOnOkKeepsBreakAndLoopMachinery) {
  Analysis A = analyzeOk(Retry);
  SliceResult R = *computeSlice(A, Criterion(11, {"ok"}),
                                SliceAlgorithm::Agrawal);
  std::set<unsigned> Lines = R.lineSet(A.cfg());
  // The do-while predicate node carries the `do` keyword's line (3).
  for (unsigned Line : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 11u})
    EXPECT_TRUE(Lines.count(Line)) << "line " << Line << " missing";
  EXPECT_FALSE(Lines.count(12));
  // Line 4 is needed via the do-while condition (attempts < 3), which
  // decides how many times the status check runs.
  EXPECT_TRUE(Lines.count(1));
}

TEST(RetryScenario, AllSoundAlgorithmsAgreeBehaviourally) {
  Analysis A = analyzeOk(Retry);
  for (SliceAlgorithm Algorithm :
       {SliceAlgorithm::Agrawal, SliceAlgorithm::Structured,
        SliceAlgorithm::Conservative, SliceAlgorithm::BallHorwitz,
        SliceAlgorithm::Lyle})
    expectBehaviourPreserved(A, Criterion(11, {"ok"}), Algorithm,
                             {{1, 1, 1}, {0}, {1, 0}, {1, 1, 1, 0}, {}});
}

} // namespace
