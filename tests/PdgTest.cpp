//===- tests/PdgTest.cpp - Control dependence and PDG tests -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"

#include <gtest/gtest.h>

using namespace jslice;

namespace {

Analysis analyzeOk(const std::string &Source) {
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  EXPECT_TRUE(A.hasValue()) << (A.hasValue() ? "" : A.diags().str());
  return std::move(*A);
}

unsigned nodeOn(const Analysis &A, unsigned Line) {
  std::vector<unsigned> Nodes = A.cfg().nodesOnLine(Line);
  EXPECT_EQ(Nodes.size(), 1u) << "line " << Line;
  return Nodes.front();
}

/// Lines directly control dependent on the node at \p Line.
std::set<unsigned> controlledLines(const Analysis &A, unsigned CtrlNode) {
  std::set<unsigned> Lines;
  for (unsigned Node : A.pdg().Control.succs(CtrlNode))
    if (const Stmt *S = A.cfg().node(Node).S)
      Lines.insert(S->getLoc().Line);
  return Lines;
}

TEST(ControlDependenceTest, IfBranchesDependOnPredicate) {
  Analysis A = analyzeOk("if (c > 0) {\nx = 1;\n} else {\nx = 2;\n}\n"
                         "write(x);\n");
  unsigned Cond = nodeOn(A, 1);
  EXPECT_EQ(controlledLines(A, Cond), (std::set<unsigned>{2, 4}));
}

TEST(ControlDependenceTest, StatementAfterIfIsNotDependent) {
  Analysis A = analyzeOk("if (c > 0)\nx = 1;\nwrite(x);\n");
  unsigned Cond = nodeOn(A, 1);
  EXPECT_EQ(controlledLines(A, Cond), (std::set<unsigned>{2}));
}

TEST(ControlDependenceTest, WhileBodyAndSelfDependence) {
  Analysis A = analyzeOk("while (x < 3) {\nx = x + 1;\n}\nwrite(x);\n");
  unsigned Cond = nodeOn(A, 1);
  EXPECT_EQ(controlledLines(A, Cond), (std::set<unsigned>{1, 2}))
      << "loop predicates control their body and themselves";
}

TEST(ControlDependenceTest, TopLevelDependsOnEntry) {
  Analysis A = analyzeOk("x = 1;\nwrite(x);\n");
  std::set<unsigned> FromEntry = controlledLines(A, A.cfg().entry());
  EXPECT_EQ(FromEntry, (std::set<unsigned>{1, 2}))
      << "the Entry->Exit edge makes Entry the paper's dummy predicate";
}

TEST(ControlDependenceTest, PaperFigure2Shape) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  // Figure 2-c: 3 controls 4,5 (and itself); 5 controls 6,7,8; 8
  // controls 9,10.
  EXPECT_EQ(controlledLines(A, nodeOn(A, 3)), (std::set<unsigned>{3, 4, 5}));
  EXPECT_EQ(controlledLines(A, nodeOn(A, 5)), (std::set<unsigned>{6, 7, 8}));
  EXPECT_EQ(controlledLines(A, nodeOn(A, 8)), (std::set<unsigned>{9, 10}));
}

TEST(ControlDependenceTest, PaperFigure4GotoProgram) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  // Line 3 (`L3: if (eof()) goto L14`) has two nodes; take them apart.
  std::vector<unsigned> OnLine3 = A.cfg().nodesOnLine(3);
  ASSERT_EQ(OnLine3.size(), 2u);
  unsigned Pred3 =
      A.cfg().node(OnLine3[0]).Kind == CfgNodeKind::Predicate ? OnLine3[0]
                                                              : OnLine3[1];
  // Figure 4-c: the loop-entry predicate controls 4, 5, 13, itself, and
  // its embedded goto.
  EXPECT_EQ(controlledLines(A, Pred3), (std::set<unsigned>{3, 4, 5, 13}));
  // Nothing is control dependent on the unconditional jumps.
  for (unsigned Line : {7u, 11u, 13u}) {
    unsigned J = nodeOn(A, Line);
    ASSERT_TRUE(A.cfg().node(J).isJump());
    EXPECT_TRUE(A.pdg().Control.succs(J).empty())
        << "plain CDG: no control dependence on jumps (Section 3)";
  }
}

TEST(ControlDependenceTest, SwitchClausesDependOnPredicate) {
  Analysis A = analyzeOk(paperExample("fig14a").Source);
  unsigned Switch = nodeOn(A, 1);
  // All clause statements and breaks hang off the switch predicate.
  EXPECT_EQ(controlledLines(A, Switch),
            (std::set<unsigned>{2, 3, 4, 5, 6, 7}));
}

TEST(AugmentedControlDependenceTest, JumpsBecomeControllingNodes) {
  Analysis A = analyzeOk(paperExample("fig3a").Source);
  // In the augmented CDG, statements following a jump's fall-through
  // point are control dependent on the jump (Ball–Horwitz).
  unsigned Goto7 = nodeOn(A, 7);
  ASSERT_TRUE(A.cfg().node(Goto7).isJump());
  std::set<unsigned> Controlled;
  for (unsigned Node : A.augPdg().Control.succs(Goto7))
    if (const Stmt *S = A.cfg().node(Node).S)
      Controlled.insert(S->getLoc().Line);
  EXPECT_TRUE(Controlled.count(8))
      << "line 8 runs only when the goto on 7 is not taken";
}

TEST(AugmentedControlDependenceTest, PlainAndAugmentedAgreeWithoutJumps) {
  Analysis A = analyzeOk(paperExample("fig1a").Source);
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node)
    EXPECT_EQ(A.pdg().Control.succs(Node), A.augPdg().Control.succs(Node));
}

TEST(PdgTest, CombinedGraphMergesBothEdgeKinds) {
  Analysis A = analyzeOk("if (c > 0)\nx = 1;\nwrite(x);\n");
  unsigned Cond = nodeOn(A, 1), Then = nodeOn(A, 2), Write = nodeOn(A, 3);
  Digraph Combined = A.pdg().combined();
  EXPECT_TRUE(Combined.hasEdge(Cond, Then)) << "control edge";
  EXPECT_TRUE(Combined.hasEdge(Then, Write)) << "data edge";
}

TEST(PdgTest, BackwardClosureFollowsBothKinds) {
  Analysis A = analyzeOk("read(c);\nif (c > 0)\nx = 1;\nwrite(x);\n");
  unsigned Write = nodeOn(A, 4);
  std::set<unsigned> Closure = A.pdg().backwardClosure({Write});
  std::set<unsigned> Lines;
  for (unsigned Node : Closure)
    if (const Stmt *S = A.cfg().node(Node).S)
      Lines.insert(S->getLoc().Line);
  EXPECT_EQ(Lines, (std::set<unsigned>{1, 2, 3, 4}));
}

TEST(PdgTest, GrowClosureReportsOnlyNewNodes) {
  Analysis A = analyzeOk("read(c);\nif (c > 0)\nx = 1;\nwrite(x);\n");
  unsigned Cond = nodeOn(A, 2), Then = nodeOn(A, 3);
  std::set<unsigned> Slice = {Cond, nodeOn(A, 1), A.cfg().entry()};
  std::vector<unsigned> Added = A.pdg().growClosure(Slice, Then);
  EXPECT_EQ(Added, (std::vector<unsigned>{Then}))
      << "everything Then depends on was already present";
}

} // namespace
