//===- bench/fig03_goto_slices.cpp - Figure 3 reproduction --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 3: the goto version of the running example (3-a), the
/// conventional slice that wrongly drops the jumps on lines 7 and 13
/// (3-b), and the paper's algorithm's correct slice (3-c) with label
/// L14 re-associated to line 15.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 3: slicing the goto program");
  const PaperExample &Ex = paperExample("fig3a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 3-a (program)");
  printNumberedSource(Ex);

  SliceResult Conv = *computeSlice(A, Ex.Crit, SliceAlgorithm::Conventional);
  R.section("Figure 3-b (conventional slice, incorrect)");
  std::printf("%s", printSlice(A, Conv).c_str());

  SliceResult New = *computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal);
  R.section("Figure 3-c (the new algorithm's slice)");
  std::printf("%s", printSlice(A, New).c_str());

  R.section("paper vs measured");
  R.expectLines("conventional slice", Conv.lineSet(A.cfg()),
                Ex.ConventionalLines);
  R.expectLines("figure-7 slice", New.lineSet(A.cfg()), Ex.AgrawalLines);
  R.expectValue("productive traversals", New.ProductiveTraversals,
                Ex.ExpectedProductiveTraversals);
  R.measured("label re-association", formatReassociations(A, New));
  R.expectValue("L14 carrier line",
                A.cfg().node(New.ReassociatedLabels.at("L14")).S->getLoc()
                    .Line,
                15);
  return R.finish();
}
