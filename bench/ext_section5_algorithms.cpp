//===- bench/ext_section5_algorithms.cpp - Section 5 extensions ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Extension study for the two Section 5 algorithms implemented beyond
/// the paper's own: Weiser's iterative dataflow slicer and the
/// Choi–Ferrante synthesis algorithm (new jumps instead of original
/// ones). Quantifies the paper's prose claims:
///  * Weiser finds the same predicates but no jumps;
///  * synthesis yields smaller statement sets than Figure 7, at the
///    cost of a changed program structure (synthesized gotos).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/ProgramGenerator.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Section 5 extensions: Weiser and Choi–Ferrante synthesis");

  R.section("Weiser on the paper figures (line sets == conventional)");
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeExample(Ex);
    SliceResult W = *computeSlice(A, Ex.Crit, SliceAlgorithm::Weiser);
    R.expectLines(Ex.Name + " weiser slice", W.lineSet(A.cfg()),
                  Ex.ConventionalLines);
  }

  R.section("synthesis vs figure 7 on the paper figures");
  for (const PaperExample &Ex : paperExamples()) {
    Analysis A = analyzeExample(Ex);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    SynthesizedSlice S = sliceChoiFerranteSynthesis(A, RC);
    SliceResult Fig7 = sliceAgrawal(A, RC);
    R.measured(Ex.Name + " stmts: synthesis vs fig7",
               std::to_string(S.Kept.size()) + " vs " +
                   std::to_string(Fig7.Nodes.size()) + " (" +
                   std::to_string(S.SynthesizedJumps) +
                   " synthesized jumps)");
  }

  R.section("flattened emission of fig3a's synthesized slice");
  {
    const PaperExample &Ex = paperExample("fig3a");
    Analysis A = analyzeExample(Ex);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    PrintedSynthesis P =
        printSynthesizedSlice(A, sliceChoiFerranteSynthesis(A, RC));
    std::printf("%s", P.Text.c_str());
    ErrorOr<Analysis> Flat = Analysis::fromSource(P.Text);
    R.expectValue("flattened program re-analyzes", Flat.hasValue(), 1);
  }

  R.section("corpus comparison (100 unstructured programs)");
  unsigned Criteria = 0, Smaller = 0;
  double StmtRatio = 0, SynthJumps = 0, OrigJumps = 0;
  for (unsigned Seed = 1; Seed <= 100; ++Seed) {
    GenOptions Opts;
    Opts.Seed = Seed;
    Opts.TargetStmts = 60;
    Opts.AllowGotos = true;
    ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
    if (!A || !A->cfg().unreachableNodes().empty())
      continue;
    for (const Criterion &Crit : reachableWriteCriteria(*A)) {
      ResolvedCriterion RC = *resolveCriterion(*A, Crit);
      SynthesizedSlice S = sliceChoiFerranteSynthesis(*A, RC);
      SliceResult Fig7 = sliceAgrawal(*A, RC);
      ++Criteria;
      Smaller += S.Kept.size() < Fig7.Nodes.size();
      StmtRatio += static_cast<double>(S.Kept.size()) /
                   static_cast<double>(Fig7.Nodes.size());
      SynthJumps += S.SynthesizedJumps;
      for (unsigned Node : Fig7.Nodes)
        OrigJumps += A->cfg().node(Node).isJump();
    }
  }
  R.measured("criteria", std::to_string(Criteria));
  R.measured("synthesis strictly smaller",
             std::to_string(Smaller) + "/" + std::to_string(Criteria));
  R.measured("mean stmt ratio (synthesis/fig7)",
             std::to_string(StmtRatio / std::max(1u, Criteria)));
  R.measured("mean synthesized jumps per slice",
             std::to_string(SynthJumps / std::max(1u, Criteria)));
  R.measured("mean original jumps kept by fig7",
             std::to_string(OrigJumps / std::max(1u, Criteria)));
  R.note("(the paper: synthesis 'may lead to construction of smaller "
         "slices'; the nesting structure may differ)");
  return R.finish();
}
