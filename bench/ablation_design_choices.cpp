//===- bench/ablation_design_choices.cpp - Ablations of design choices --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Ablation studies for the design choices DESIGN.md calls out:
///
///  A1. The conditional-jump adaptation of the conventional slicer
///      (Section 2/3): turn it off and observe that the *conventional*
///      slice loses the guarded gotos, while Figure 7's PD-vs-LS test
///      self-heals — it re-discovers exactly those jumps.
///  A2. The tree driving the Figure 7 traversal (PDT vs LST): the final
///      slice is always identical (Section 3), but the traversal counts
///      may differ; measure how often, on a goto-heavy corpus.
///  A3. The Entry->Exit augmentation edge: without it, always-executed
///      statements have no controlling predicate and conventional
///      slices lose their anchor (quantified as lost nodes).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/ProgramGenerator.h"
#include "slicer/SlicerInternal.h"

using namespace jslice;
using namespace jslice::bench;

namespace {

/// Figure 7 without the conditional-jump adaptation: plain backward
/// closure plus the PD-vs-LS fixpoint (closure via Pdg::growClosure,
/// which never applies the adaptation).
std::set<unsigned> fig7WithoutAdaptation(const Analysis &A,
                                         const ResolvedCriterion &RC) {
  std::set<unsigned> Slice = A.pdg().backwardClosure(RC.Seeds);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned J : A.pdt().preorder()) {
      if (!A.cfg().node(J).isJump() || Slice.count(J))
        continue;
      if (detail::nearestPostdomInSlice(A, J, Slice) ==
          detail::nearestLexSuccInSlice(A, J, Slice))
        continue;
      A.pdg().growClosure(Slice, J);
      Changed = true;
    }
  }
  return Slice;
}

} // namespace

int main() {
  Report R("Ablations: adaptation, traversal tree, entry edge");

  R.section("A1: conditional-jump adaptation (fig3a)");
  {
    const PaperExample &Ex = paperExample("fig3a");
    Analysis A = analyzeExample(Ex);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);

    std::set<unsigned> NoAdapt = A.pdg().backwardClosure(RC.Seeds);
    SliceResult WithAdapt = sliceConventional(A, RC);
    unsigned LostJumps = 0;
    for (unsigned Node : WithAdapt.Nodes)
      if (A.cfg().node(Node).isJump() && !NoAdapt.count(Node))
        ++LostJumps;
    R.expectValue("guarded gotos lost without adaptation", LostJumps, 2);

    SliceResult Fig7 = sliceAgrawal(A, RC);
    std::set<unsigned> Fig7NoAdapt = fig7WithoutAdaptation(A, RC);
    R.expectValue("figure 7 self-heals (same final slice)",
                  Fig7NoAdapt == Fig7.Nodes ? 1 : 0, 1);
  }

  R.section("A1 on corpus (does figure 7 always self-heal?)");
  {
    unsigned Criteria = 0, Same = 0;
    for (unsigned Seed = 1; Seed <= 60; ++Seed) {
      GenOptions Opts;
      Opts.Seed = Seed;
      Opts.TargetStmts = 50;
      Opts.AllowGotos = true;
      ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
      if (!A || !A->cfg().unreachableNodes().empty())
        continue;
      for (const Criterion &Crit : reachableWriteCriteria(*A)) {
        ResolvedCriterion RC = *resolveCriterion(*A, Crit);
        ++Criteria;
        Same += fig7WithoutAdaptation(*A, RC) ==
                sliceAgrawal(*A, RC).Nodes;
      }
    }
    R.measured("criteria", std::to_string(Criteria));
    R.measured("identical final slices",
               std::to_string(Same) + "/" + std::to_string(Criteria));
  }

  R.section("A2: PDT- vs LST-driven traversal (goto corpus)");
  {
    unsigned Criteria = 0, SameCount = 0, PdtFewer = 0, LstFewer = 0;
    for (unsigned Seed = 1; Seed <= 60; ++Seed) {
      GenOptions Opts;
      Opts.Seed = Seed + 300;
      Opts.TargetStmts = 50;
      Opts.AllowGotos = true;
      ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
      if (!A)
        continue;
      for (const Criterion &Crit : reachableWriteCriteria(*A)) {
        ResolvedCriterion RC = *resolveCriterion(*A, Crit);
        SliceResult Pdt = sliceAgrawal(*A, RC);
        SliceResult Lst =
            sliceAgrawal(*A, RC, TraversalTree::LexicalSuccessor);
        ++Criteria;
        if (Pdt.ProductiveTraversals == Lst.ProductiveTraversals)
          ++SameCount;
        else if (Pdt.ProductiveTraversals < Lst.ProductiveTraversals)
          ++PdtFewer;
        else
          ++LstFewer;
      }
    }
    R.measured("criteria", std::to_string(Criteria));
    R.measured("same traversal count", std::to_string(SameCount));
    R.measured("PDT fewer", std::to_string(PdtFewer));
    R.measured("LST fewer", std::to_string(LstFewer));
    R.note("(Section 3: the slice never differs; only the counts may)");

    // Figure 10 is the paper's own multi-traversal witness; show both
    // orders' counts there explicitly.
    const PaperExample &Ex = paperExample("fig10a");
    Analysis A = analyzeExample(Ex);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    R.measured("fig10a traversals (PDT order)",
               std::to_string(sliceAgrawal(A, RC).ProductiveTraversals));
    R.measured(
        "fig10a traversals (LST order)",
        std::to_string(
            sliceAgrawal(A, RC, TraversalTree::LexicalSuccessor)
                .ProductiveTraversals));
  }

  R.section("A3: the Entry->Exit augmentation edge (fig1a)");
  {
    // Rebuild control dependence from a flowgraph without the edge and
    // count conventional-slice nodes that lose their controlling
    // predicate (they fall out of the closure).
    const PaperExample &Ex = paperExample("fig1a");
    Analysis A = analyzeExample(Ex);
    Digraph Stripped(A.cfg().numNodes());
    for (unsigned From = 0; From != A.cfg().numNodes(); ++From)
      for (unsigned To : A.cfg().graph().succs(From))
        if (!(From == A.cfg().entry() && To == A.cfg().exit()))
          Stripped.addEdge(From, To);
    DomTree Pdt = computePostDominators(Stripped, A.cfg().exit());
    Digraph CD = buildControlDependence(Stripped, Pdt);
    unsigned Orphans = 0;
    for (unsigned Node = 2; Node != A.cfg().numNodes(); ++Node)
      if (CD.preds(Node).empty())
        ++Orphans;
    R.measured("statements with no controlling predicate",
               std::to_string(Orphans));
    R.note("(with the edge, every always-executed statement is control "
           "dependent on Entry — the paper's dummy node 0)");
  }
  return R.finish();
}
