//===- bench/perf_algorithms.cpp - Algorithm head-to-head ---------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment: per-slice cost of all nine algorithms on one
/// generated unstructured program (~400 statements) and one structured
/// program, same criterion. The expected shape: conventional is the
/// floor; Figure 13 adds almost nothing on top; Figure 12 pays for two
/// tree walks per jump; Figure 7 pays per traversal; Ball–Horwitz pays
/// its cost up front in the augmented analysis (not measured per
/// slice); Lyle's all-jumps closure costs about one extra closure.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <benchmark/benchmark.h>

using namespace jslice;

namespace {

const Analysis &fixture(bool Gotos) {
  static std::map<bool, Analysis> Cache;
  auto It = Cache.find(Gotos);
  if (It == Cache.end()) {
    GenOptions Opts;
    Opts.Seed = 777;
    Opts.TargetStmts = 400;
    Opts.AllowGotos = Gotos;
    Opts.NumVars = 8;
    ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
    assert(A.hasValue() && "generated program must analyze");
    It = Cache.emplace(Gotos, std::move(*A)).first;
  }
  return It->second;
}

void runAlgorithm(benchmark::State &State, SliceAlgorithm Algorithm,
                  bool Gotos) {
  const Analysis &A = fixture(Gotos);
  ResolvedCriterion RC =
      *resolveCriterion(A, reachableWriteCriteria(A).back());
  size_t SliceSize = 0;
  for (auto _ : State) {
    SliceResult R = computeSlice(A, RC, Algorithm);
    SliceSize = R.Nodes.size();
    benchmark::DoNotOptimize(SliceSize);
  }
  State.counters["slice_nodes"] = static_cast<double>(SliceSize);
}

#define JSLICE_BENCH(NAME, ALGO)                                             \
  void BM_Unstructured_##NAME(benchmark::State &State) {                     \
    runAlgorithm(State, SliceAlgorithm::ALGO, /*Gotos=*/true);               \
  }                                                                          \
  BENCHMARK(BM_Unstructured_##NAME);                                         \
  void BM_Structured_##NAME(benchmark::State &State) {                       \
    runAlgorithm(State, SliceAlgorithm::ALGO, /*Gotos=*/false);              \
  }                                                                          \
  BENCHMARK(BM_Structured_##NAME)

JSLICE_BENCH(Conventional, Conventional);
JSLICE_BENCH(AgrawalFig7, Agrawal);
JSLICE_BENCH(AgrawalFig7Lst, AgrawalLst);
JSLICE_BENCH(StructuredFig12, Structured);
JSLICE_BENCH(ConservativeFig13, Conservative);
JSLICE_BENCH(BallHorwitz, BallHorwitz);
JSLICE_BENCH(Lyle, Lyle);
JSLICE_BENCH(Gallagher, Gallagher);
JSLICE_BENCH(JiangZhouRobson, JiangZhouRobson);

void BM_AugmentedAnalysisOverhead(benchmark::State &State) {
  // What Ball–Horwitz pays once per program: the augmented graph, its
  // postdominators, and its control dependence.
  const Analysis &A = fixture(true);
  for (auto _ : State) {
    Digraph Aug = A.cfg().buildAugmentedGraph(A.lst().parents());
    DomTree Pdt = computePostDominators(Aug, A.cfg().exit());
    Digraph CD = buildControlDependence(Aug, Pdt);
    benchmark::DoNotOptimize(CD.numEdges());
  }
}
BENCHMARK(BM_AugmentedAnalysisOverhead);

void BM_LexicalSuccessorTree(benchmark::State &State) {
  // What the paper's approach pays instead: one syntax-directed tree.
  const Analysis &A = fixture(true);
  for (auto _ : State) {
    LexicalSuccessorTree Lst = buildLexicalSuccessorTree(A.cfg());
    benchmark::DoNotOptimize(Lst.numNodes());
  }
}
BENCHMARK(BM_LexicalSuccessorTree);

} // namespace

BENCHMARK_MAIN();
