//===- bench/fig12_structured_algorithm.cpp - Figure 12 reproduction ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 12 is the simplified single-traversal algorithm for
/// structured programs. This bench verifies it equals Figure 7 on the
/// paper's structured examples and over a generated corpus (break/
/// continue only — see DESIGN.md "Findings" for why returns and
/// fall-through switches are excluded), and measures its speedup.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/ProgramGenerator.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 12: the structured-jump algorithm");

  R.section("paper examples");
  for (const char *Name : {"fig1a", "fig5a", "fig14a", "fig16a"}) {
    const PaperExample &Ex = paperExample(Name);
    Analysis A = analyzeExample(Ex);
    SliceResult Single = *computeSlice(A, Ex.Crit, SliceAlgorithm::Structured);
    R.expectLines(std::string(Name) + " figure-12 slice",
                  Single.lineSet(A.cfg()), *Ex.StructuredLines);
  }

  R.section("corpus equivalence (150 structured programs)");
  unsigned Criteria = 0, Equal = 0;
  for (unsigned Seed = 1; Seed <= 150; ++Seed) {
    GenOptions Opts;
    Opts.Seed = Seed;
    Opts.TargetStmts = 60;
    Opts.AllowGotos = false;
    Opts.AllowReturn = false;
    Opts.AllowSwitch = false;
    ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
    if (!A || !A->cfg().unreachableNodes().empty())
      continue;
    for (const Criterion &Crit : reachableWriteCriteria(*A)) {
      ResolvedCriterion RC = *resolveCriterion(*A, Crit);
      ++Criteria;
      Equal += sliceStructured(*A, RC).Nodes == sliceAgrawal(*A, RC).Nodes;
    }
  }
  R.expectValue("criteria where figure 12 == figure 7", Equal, Criteria);
  R.measured("criteria checked", std::to_string(Criteria));

  R.section("timing (generated ~400-stmt structured program, us/slice)");
  {
    GenOptions Opts;
    Opts.Seed = 4242;
    Opts.TargetStmts = 400;
    Opts.AllowGotos = false;
    Opts.AllowReturn = false;
    Opts.AllowSwitch = false;
    ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
    if (A) {
      ResolvedCriterion RC =
          *resolveCriterion(*A, reachableWriteCriteria(*A).back());
      double General = timeMicros(500, [&] { sliceAgrawal(*A, RC); });
      double Single = timeMicros(500, [&] { sliceStructured(*A, RC); });
      R.measured("figure 7", std::to_string(General) + " us");
      R.measured("figure 12", std::to_string(Single) + " us");
      R.measured("speedup", std::to_string(General / Single) + "x");
    }
  }
  return R.finish();
}
