//===- bench/fig11_graphs.cpp - Figure 11 reproduction ------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 11: graphs of the unstructured program 10-a, including the
/// (postdominates, lexically-succeeds) pair between nodes 4 and 7 that
/// forces the second traversal.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 11: graphs of the program in Figure 10-a");
  const PaperExample &Ex = paperExample("fig10a");
  Analysis A = analyzeExample(Ex);

  R.section("graphs");
  printGraphs(A);

  R.section("paper vs measured");
  // First-traversal state: node 4's nearest postdominator and lexical
  // successor both resolve through the not-yet-in-slice chain to 9.
  expectIpdomLine(R, A, 4, 8);
  expectIlsLine(R, A, 4, 5);
  expectIpdomLine(R, A, 7, 3);
  expectIlsLine(R, A, 7, 8);
  expectIpdomLine(R, A, 2, 6);
  expectIlsLine(R, A, 2, 3);
  // Line 3 executes unconditionally: control dependent only on Entry.
  std::set<unsigned> CtrlOf3;
  for (unsigned Node : A.pdg().Control.preds(nodeOn(A, 3)))
    if (const Stmt *S = A.cfg().node(Node).S)
      CtrlOf3.insert(S->getLoc().Line);
  R.expectLines("node 3 control dependent on lines", CtrlOf3, {});
  // Node 2 is control dependent on the if on line 1.
  std::set<unsigned> CtrlOf2;
  for (unsigned Node : A.pdg().Control.preds(nodeOn(A, 2)))
    if (const Stmt *S = A.cfg().node(Node).S)
      CtrlOf2.insert(S->getLoc().Line);
  R.expectLines("node 2 control dependent on lines", CtrlOf2, {1});
  return R.finish();
}
