//===- bench/fig13_conservative_algorithm.cpp - Figure 13 reproduction --------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 13 is the tree-free conservative adaptation: every jump
/// directly control dependent on an in-slice predicate joins the slice.
/// This bench measures how much larger than Figure 12 its slices get —
/// the cost of skipping both trees — and the speed it buys.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/ProgramGenerator.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 13: the conservative algorithm");

  R.section("paper examples");
  for (const char *Name : {"fig5a", "fig14a", "fig16a"}) {
    const PaperExample &Ex = paperExample(Name);
    Analysis A = analyzeExample(Ex);
    SliceResult Cons =
        *computeSlice(A, Ex.Crit, SliceAlgorithm::Conservative);
    R.expectLines(std::string(Name) + " figure-13 slice",
                  Cons.lineSet(A.cfg()), *Ex.ConservativeLines);
  }

  R.section("slice-size overhead vs figure 12 (150 structured programs)");
  unsigned Criteria = 0, Inflated = 0;
  double ExtraJumps = 0;
  bool SupersetAlways = true;
  for (unsigned Seed = 1; Seed <= 150; ++Seed) {
    GenOptions Opts;
    Opts.Seed = Seed;
    Opts.TargetStmts = 60;
    Opts.AllowGotos = false;
    Opts.AllowReturn = false;
    Opts.AllowSwitch = false;
    ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
    if (!A || !A->cfg().unreachableNodes().empty())
      continue;
    for (const Criterion &Crit : reachableWriteCriteria(*A)) {
      ResolvedCriterion RC = *resolveCriterion(*A, Crit);
      SliceResult Single = sliceStructured(*A, RC);
      SliceResult Cons = sliceConservative(*A, RC);
      ++Criteria;
      for (unsigned Node : Single.Nodes)
        SupersetAlways = SupersetAlways && Cons.contains(Node);
      if (Cons.Nodes.size() > Single.Nodes.size()) {
        ++Inflated;
        ExtraJumps += static_cast<double>(Cons.Nodes.size() -
                                          Single.Nodes.size());
      }
    }
  }
  R.expectValue("figure 13 always ⊇ figure 12", SupersetAlways ? 1 : 0, 1);
  R.measured("criteria checked", std::to_string(Criteria));
  R.measured("criteria with larger slices", std::to_string(Inflated));
  R.measured("mean extra jumps when larger",
             std::to_string(Inflated ? ExtraJumps / Inflated : 0.0));

  R.section("timing (fig14a, microseconds per slice)");
  {
    const PaperExample &Ex = paperExample("fig14a");
    Analysis A = analyzeExample(Ex);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    double Single = timeMicros(2000, [&] { sliceStructured(A, RC); });
    double Cons = timeMicros(2000, [&] { sliceConservative(A, RC); });
    R.measured("figure 12", std::to_string(Single) + " us");
    R.measured("figure 13 (no tree walks)", std::to_string(Cons) + " us");
  }
  return R.finish();
}
