//===- bench/perf_batch.cpp - Batch engine vs single-shot throughput ----------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment (the paper reports no measurements): throughput
/// of slicing EVERY line criterion of one generated program, single-shot
/// (one full PDG traversal per criterion) versus the batch engine
/// (shared SCC condensation + memoized dependence closures, optionally
/// threaded). Emits BENCH_batch.json with criteria/sec for both and for
/// a ladder of thread counts.
///
/// Construction (condensation + closure bitsets) is single-threaded
/// and timed separately from the queries: the thread-ladder rows
/// measure pure query scaling over one shared, immutable engine, and
/// `build_seconds` reports the one-time cost a cold caller (or an
/// analysis-cache miss) pays on top. Earlier revisions folded the
/// build into the first ladder row, which made thread scaling look
/// flat — the build dominated and never parallelizes. The JSON also
/// records the machine's hardware_concurrency so a flat ladder on a
/// 1-core box reads as expected, not as a regression.
///
/// Usage: perf_batch [--smoke] [--out FILE.json]
///
/// --smoke shrinks the program to ~120 statements and the thread ladder
/// to {1,2}, and additionally cross-checks every batch slice against
/// its single-shot twin — that mode backs the `bench-smoke` ctest
/// label. The full run uses a ~2000-statement goto-dialect program and
/// threads {1,2,4,8}; single-shot cost is measured on a sample of the
/// criteria and extrapolated, because slicing thousands of criteria
/// one PDG walk at a time is exactly the cost this engine removes.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace jslice;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string generateSource(unsigned Stmts) {
  GenOptions Opts;
  Opts.Seed = 20260806;
  Opts.TargetStmts = Stmts;
  Opts.AllowGotos = true;
  Opts.NumVars = 8;
  return generateProgram(Opts);
}

struct BatchSample {
  unsigned Threads = 1;
  double Seconds = 0;
  double CriteriaPerSec = 0;
};

int run(bool Smoke, const std::string &OutPath) {
  const unsigned Stmts = Smoke ? 120 : 2000;
  const SliceAlgorithm Algo = SliceAlgorithm::Agrawal;

  std::string Source = generateSource(Stmts);
  ErrorOr<Analysis> A = Analysis::fromSource(Source);
  if (!A) {
    std::fprintf(stderr, "generated program failed to analyze:\n%s\n",
                 A.diags().str().c_str());
    return 1;
  }

  std::vector<Criterion> Crits = allLineCriteria(*A);
  if (Crits.empty()) {
    std::fprintf(stderr, "no criteria on the generated program\n");
    return 1;
  }

  // Single-shot baseline: resolve + slice per criterion, like a caller
  // looping over the one-criterion API. Sampled in the full run.
  const size_t Sample =
      Smoke ? Crits.size() : std::min<size_t>(Crits.size(), 64);
  const size_t Stride = Crits.size() / Sample;
  std::vector<SliceResult> SingleResults;
  auto SingleStart = std::chrono::steady_clock::now();
  size_t SingleRan = 0;
  for (size_t I = 0; I < Crits.size(); I += Stride) {
    ErrorOr<ResolvedCriterion> RC = resolveCriterion(*A, Crits[I]);
    if (!RC)
      continue;
    SingleResults.push_back(computeSlice(*A, *RC, Algo));
    ++SingleRan;
  }
  double SingleSecs = secondsSince(SingleStart);
  double SinglePerSec = SingleRan ? SingleRan / SingleSecs : 0;

  // Construction (condensation + closures) timed once, on its own: it
  // is single-threaded and shared by every ladder row, so folding it
  // into a row's timing would flatten the apparent thread scaling.
  auto BuildStart = std::chrono::steady_clock::now();
  BatchSlicer Engine(*A);
  double BuildSecs = secondsSince(BuildStart);

  // Query ladder over the one immutable engine: pure fan-out scaling.
  std::vector<unsigned> ThreadLadder =
      Smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  std::vector<BatchSample> Samples;
  std::vector<BatchEntry> FirstRun;
  for (unsigned Threads : ThreadLadder) {
    auto Start = std::chrono::steady_clock::now();
    BatchOptions Opts;
    Opts.Algorithm = Algo;
    Opts.Threads = Threads;
    std::vector<BatchEntry> Entries = Engine.runAll(Crits, Opts);
    BatchSample S;
    S.Threads = Threads;
    S.Seconds = secondsSince(Start);
    S.CriteriaPerSec = Entries.size() / S.Seconds;
    Samples.push_back(S);
    if (FirstRun.empty())
      FirstRun = std::move(Entries);
  }

  int Failures = 0;
  if (Smoke) {
    // Spot check: the smoke baseline sliced every criterion, so every
    // batch entry has a single-shot twin to compare against.
    size_t SingleIdx = 0;
    for (size_t I = 0; I < Crits.size(); I += Stride) {
      const BatchEntry &E = FirstRun[I];
      if (!E.Ok)
        continue;
      if (SingleIdx >= SingleResults.size())
        break;
      if (E.Result.Nodes != SingleResults[SingleIdx].Nodes ||
          E.Result.ReassociatedLabels !=
              SingleResults[SingleIdx].ReassociatedLabels) {
        std::fprintf(stderr,
                     "smoke check: batch slice for criterion line %u "
                     "differs from single-shot\n",
                     E.Crit.Line);
        ++Failures;
      }
      ++SingleIdx;
    }
  }

  double Speedup1 =
      SinglePerSec > 0 ? Samples.front().CriteriaPerSec / SinglePerSec : 0;

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"benchmark\": \"batch_vs_single_shot\",\n");
  std::fprintf(Out, "  \"mode\": \"%s\",\n", Smoke ? "smoke" : "full");
  std::fprintf(Out, "  \"algorithm\": \"agrawal\",\n");
  std::fprintf(Out, "  \"program_stmts\": %u,\n", Stmts);
  std::fprintf(Out, "  \"criteria\": %zu,\n", Crits.size());
  std::fprintf(Out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(Out,
               "  \"single_shot\": {\"sampled_criteria\": %zu, "
               "\"seconds\": %.6f, \"criteria_per_sec\": %.2f},\n",
               SingleRan, SingleSecs, SinglePerSec);
  std::fprintf(Out, "  \"build_seconds\": %.6f,\n", BuildSecs);
  std::fprintf(Out, "  \"batch\": [\n");
  for (size_t I = 0; I < Samples.size(); ++I) {
    const BatchSample &S = Samples[I];
    std::fprintf(Out,
                 "    {\"threads\": %u, \"query_seconds\": %.6f, "
                 "\"criteria_per_sec\": %.2f, "
                 "\"criteria_per_sec_incl_build\": %.2f, "
                 "\"speedup_vs_single_shot\": %.2f}%s\n",
                 S.Threads, S.Seconds, S.CriteriaPerSec,
                 Crits.size() / (S.Seconds + BuildSecs),
                 SinglePerSec > 0 ? S.CriteriaPerSec / SinglePerSec : 0,
                 I + 1 == Samples.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);

  std::printf("%u stmts, %zu criteria: single-shot %.1f criteria/sec, "
              "batch build %.3fs + queries(1 thread) %.1f criteria/sec "
              "(%.1fx)\n",
              Stmts, Crits.size(), SinglePerSec, BuildSecs,
              Samples.front().CriteriaPerSec, Speedup1);
  for (const BatchSample &S : Samples)
    std::printf("  threads=%u  %.3fs  %.1f criteria/sec\n", S.Threads,
                S.Seconds, S.CriteriaPerSec);
  std::printf("wrote %s\n", OutPath.c_str());
  if (Smoke)
    std::printf("smoke cross-check: %s\n",
                Failures == 0 ? "batch == single-shot" : "DIVERGED");
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_batch.json";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--smoke") {
      Smoke = true;
    } else if (Arg == "--out" && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: perf_batch [--smoke] [--out FILE.json]\n");
      return 2;
    }
  }
  return run(Smoke, OutPath);
}
