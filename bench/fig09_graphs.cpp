//===- bench/fig09_graphs.cpp - Figure 9 reproduction -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 9: graphs of the direct-goto program 8-a. Checks the
/// walkthrough facts: the back-jumps' postdominator is the loop head
/// (line 3); nodes 11 and 13 are control dependent on the predicate on
/// line 9.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 9: graphs of the program in Figure 8-a");
  const PaperExample &Ex = paperExample("fig8a");
  Analysis A = analyzeExample(Ex);

  R.section("graphs");
  printGraphs(A);

  R.section("paper vs measured (Section 3 walkthrough)");
  expectIpdomLine(R, A, 7, 3);
  expectIpdomLine(R, A, 11, 3);
  expectIpdomLine(R, A, 13, 3);
  expectIlsLine(R, A, 11, 12);
  expectIlsLine(R, A, 13, 14);

  for (unsigned Line : {11u, 13u}) {
    std::set<unsigned> Ctrl;
    for (unsigned Node : A.pdg().Control.preds(nodeOn(A, Line)))
      if (const Stmt *S = A.cfg().node(Node).S)
        Ctrl.insert(S->getLoc().Line);
    R.expectLines("node " + std::to_string(Line) + " control dependent on",
                  Ctrl, {9});
  }
  return R.finish();
}
