//===- bench/fig07_general_algorithm.cpp - Figure 7 reproduction --------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 7 is the paper's general algorithm itself. This bench replays
/// the Section 3 walkthroughs — which jump each traversal adds on the
/// example programs — and quantifies the algorithm on generated
/// corpora: traversal counts, slice growth over the conventional
/// slice, and the PDT- vs LST-driven traversal order.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/ProgramGenerator.h"

using namespace jslice;
using namespace jslice::bench;

namespace {

void traceExample(Report &R, const char *Name) {
  const PaperExample &Ex = paperExample(Name);
  Analysis A = analyzeExample(Ex);
  SliceResult Slice = *computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal);
  R.section(std::string("trace on ") + Name);
  for (size_t Pass = 0; Pass != Slice.TraversalAdditions.size(); ++Pass) {
    std::string Lines;
    for (unsigned Node : Slice.TraversalAdditions[Pass]) {
      if (!Lines.empty())
        Lines += ", ";
      Lines += A.cfg().labelOf(Node);
    }
    std::printf("traversal %zu adds jumps on lines: %s\n", Pass + 1,
                Lines.c_str());
  }
  R.expectValue("productive traversals", Slice.ProductiveTraversals,
                Ex.ExpectedProductiveTraversals);
  R.expectLines("final slice", Slice.lineSet(A.cfg()), Ex.AgrawalLines);
}

} // namespace

int main() {
  Report R("Figure 7: the general algorithm (traces + corpus study)");

  traceExample(R, "fig3a");
  traceExample(R, "fig8a");
  traceExample(R, "fig10a");

  R.section("corpus study (100 unstructured programs, ~60 stmts)");
  unsigned MaxTraversals = 0;
  unsigned MultiTraversal = 0;
  unsigned Criteria = 0;
  double GrowthSum = 0;
  for (unsigned Seed = 1; Seed <= 100; ++Seed) {
    GenOptions Opts;
    Opts.Seed = Seed;
    Opts.TargetStmts = 60;
    Opts.AllowGotos = true;
    ErrorOr<Analysis> A = Analysis::fromSource(generateProgram(Opts));
    if (!A)
      continue;
    for (const Criterion &Crit : reachableWriteCriteria(*A)) {
      ResolvedCriterion RC = *resolveCriterion(*A, Crit);
      SliceResult Conv = sliceConventional(*A, RC);
      SliceResult Full = sliceAgrawal(*A, RC);
      ++Criteria;
      MaxTraversals = std::max(MaxTraversals, Full.ProductiveTraversals);
      MultiTraversal += Full.ProductiveTraversals > 1;
      GrowthSum += Conv.Nodes.empty()
                       ? 0.0
                       : static_cast<double>(Full.Nodes.size()) /
                             static_cast<double>(Conv.Nodes.size());
    }
  }
  R.measured("criteria sliced", std::to_string(Criteria));
  R.measured("max productive traversals", std::to_string(MaxTraversals));
  R.measured("criteria needing >1 traversal",
             std::to_string(MultiTraversal));
  R.measured("mean slice growth over conventional",
             std::to_string(GrowthSum / std::max(1u, Criteria)));
  R.note("(the paper predicts multiple traversals only for programs with "
         "a postdominates/lexically-succeeds pair — rare in practice)");

  R.section("timing (fig8a, microseconds per slice)");
  {
    const PaperExample &Ex = paperExample("fig8a");
    Analysis A = analyzeExample(Ex);
    ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
    R.measured("conventional",
               std::to_string(timeMicros(
                   2000, [&] { sliceConventional(A, RC); })) +
                   " us");
    R.measured("figure 7 (PDT order)",
               std::to_string(timeMicros(2000, [&] { sliceAgrawal(A, RC); })) +
                   " us");
    R.measured(
        "figure 7 (LST order)",
        std::to_string(timeMicros(
            2000,
            [&] { sliceAgrawal(A, RC, TraversalTree::LexicalSuccessor); })) +
            " us");
  }
  return R.finish();
}
