//===- bench/fig04_graphs.cpp - Figure 4 reproduction -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 4: flowgraph, postdominator tree, control dependence graph,
/// and lexical successor tree of the goto program 3-a. The walkthrough
/// facts from Section 3 are checked: node 13's nearest postdominator is
/// 3 while its immediate lexical successor is 14; 13 is control
/// dependent on 3; nothing is control dependent on the unconditional
/// jumps.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 4: graphs of the program in Figure 3-a");
  const PaperExample &Ex = paperExample("fig3a");
  Analysis A = analyzeExample(Ex);

  R.section("graphs");
  printGraphs(A);

  R.section("paper vs measured (Section 3 walkthrough)");
  expectIpdomLine(R, A, 13, 3);
  expectIlsLine(R, A, 13, 14);
  expectIpdomLine(R, A, 7, 13);
  expectIlsLine(R, A, 7, 8);
  expectIpdomLine(R, A, 11, 13);
  expectIlsLine(R, A, 11, 12);

  std::set<unsigned> CtrlOf13;
  for (unsigned Ctrl : A.pdg().Control.preds(nodeOn(A, 13)))
    if (const Stmt *S = A.cfg().node(Ctrl).S)
      CtrlOf13.insert(S->getLoc().Line);
  R.expectLines("node 13 control dependent on", CtrlOf13, {3});

  unsigned DependentsOnJumps = 0;
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node)
    if (A.cfg().node(Node).isJump())
      DependentsOnJumps +=
          static_cast<unsigned>(A.pdg().Control.succs(Node).size());
  R.expectValue("nodes control dependent on jumps", DependentsOnJumps, 0);
  return R.finish();
}
