//===- bench/fig14_switch_slices.cpp - Figure 14 reproduction -----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 14: the switch program on which the simplified (Figure 12)
/// and conservative (Figure 13) algorithms differ — the conservative
/// one also keeps the breaks on lines 5 and 7, since they too are
/// directly control dependent on the in-slice switch predicate.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 14: where Figures 12 and 13 differ");
  const PaperExample &Ex = paperExample("fig14a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 14-a (program)");
  printNumberedSource(Ex);

  SliceResult Single = *computeSlice(A, Ex.Crit, SliceAlgorithm::Structured);
  R.section("Figure 14-b (simplified algorithm's slice)");
  std::printf("%s", printSlice(A, Single).c_str());

  SliceResult Cons = *computeSlice(A, Ex.Crit, SliceAlgorithm::Conservative);
  R.section("Figure 14-c (conservative algorithm's slice)");
  std::printf("%s", printSlice(A, Cons).c_str());

  R.section("paper vs measured");
  R.expectLines("figure-12 slice", Single.lineSet(A.cfg()),
                *Ex.StructuredLines);
  R.expectLines("figure-13 slice", Cons.lineSet(A.cfg()),
                *Ex.ConservativeLines);
  R.expectValue("break on 3 in both",
                Single.lineSet(A.cfg()).count(3) +
                    Cons.lineSet(A.cfg()).count(3),
                2);
  R.expectValue("breaks on 5,7 only in figure 13",
                Cons.lineSet(A.cfg()).count(5) +
                    Cons.lineSet(A.cfg()).count(7) +
                    Single.lineSet(A.cfg()).count(5) +
                    Single.lineSet(A.cfg()).count(7),
                2);
  // Figure 7 agrees with Figure 12 here.
  R.expectLines("figure-7 slice",
                computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal)->lineSet(
                    A.cfg()),
                *Ex.StructuredLines);
  return R.finish();
}
