//===- bench/fig10_multi_traversal.cpp - Figure 10 reproduction ---------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 10: the unstructured program for which one traversal is not
/// enough. The first traversal adds the gotos on lines 7 and 2 (and,
/// through control dependence, the if on line 1); only then does the
/// goto on line 4 see different nearest-postdominator and nearest-
/// lexical-successor nodes, so a second traversal adds it. Labels L6
/// and L8 re-associate to lines 7 and 9.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 10: the two-traversal program");
  const PaperExample &Ex = paperExample("fig10a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 10-a (program)");
  printNumberedSource(Ex);

  SliceResult New = *computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal);
  R.section("Figure 10-b (slice w.r.t. y @ 9)");
  std::printf("%s", printSlice(A, New).c_str());

  R.section("traversal trace");
  for (size_t Pass = 0; Pass != New.TraversalAdditions.size(); ++Pass) {
    std::string Lines;
    for (unsigned Node : New.TraversalAdditions[Pass]) {
      if (!Lines.empty())
        Lines += ", ";
      Lines += A.cfg().labelOf(Node);
    }
    std::printf("traversal %zu adds jumps on lines: %s\n", Pass + 1,
                Lines.c_str());
  }

  R.section("paper vs measured");
  R.expectLines("final slice", New.lineSet(A.cfg()), Ex.AgrawalLines);
  R.expectValue("productive traversals", New.ProductiveTraversals, 2);
  R.expectValue("L6 carrier line",
                A.cfg().node(New.ReassociatedLabels.at("L6")).S->getLoc()
                    .Line,
                7);
  R.expectValue("L8 carrier line",
                A.cfg().node(New.ReassociatedLabels.at("L8")).S->getLoc()
                    .Line,
                9);

  // The pair the paper blames: 4 postdominates 7, 7 lexically succeeds 4.
  R.expectValue("node 4 postdominates node 7",
                A.pdt().dominates(nodeOn(A, 4), nodeOn(A, 7)) ? 1 : 0, 1);
  R.expectValue("node 7 lexically succeeds node 4",
                A.lst().isLexicalSuccessorOf(nodeOn(A, 7), nodeOn(A, 4))
                    ? 1
                    : 0,
                1);
  return R.finish();
}
