//===- bench/fig05_continue_slices.cpp - Figure 5 reproduction ----------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 5: the continue version of the running example (5-a), its
/// incorrect conventional slice (5-b), and the correct slice (5-c),
/// which keeps the continue on line 7 but not the one on line 11.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 5: slicing the continue program");
  const PaperExample &Ex = paperExample("fig5a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 5-a (program)");
  printNumberedSource(Ex);

  SliceResult Conv = *computeSlice(A, Ex.Crit, SliceAlgorithm::Conventional);
  R.section("Figure 5-b (conventional slice, incorrect)");
  std::printf("%s", printSlice(A, Conv).c_str());

  SliceResult New = *computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal);
  R.section("Figure 5-c (the new algorithm's slice)");
  std::printf("%s", printSlice(A, New).c_str());

  R.section("paper vs measured");
  R.expectLines("conventional slice", Conv.lineSet(A.cfg()),
                Ex.ConventionalLines);
  R.expectLines("figure-7 slice", New.lineSet(A.cfg()), Ex.AgrawalLines);
  R.expectValue("continue on 7 kept", New.lineSet(A.cfg()).count(7), 1);
  R.expectValue("continue on 11 dropped",
                New.lineSet(A.cfg()).count(11), 0);
  return R.finish();
}
