//===- bench/fig01_conventional.cpp - Figure 1 reproduction -------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 1: the jump-free running example (1-a) and its conventional
/// slice w.r.t. positives on line 12 (1-b). Conventional slicing is
/// exact here — the baseline the whole paper builds on.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 1: jump-free example and its conventional slice");
  const PaperExample &Ex = paperExample("fig1a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 1-a (program)");
  printNumberedSource(Ex);

  R.section("Figure 1-b (conventional slice w.r.t. positives @ 12)");
  SliceResult Slice = *computeSlice(A, Ex.Crit, SliceAlgorithm::Conventional);
  std::printf("%s", printSlice(A, Slice).c_str());

  R.section("paper vs measured");
  R.expectLines("conventional slice", Slice.lineSet(A.cfg()),
                Ex.ConventionalLines);
  // On jump-free programs every algorithm collapses to the same slice.
  R.expectLines("figure-7 slice (same, no jumps)",
                computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal)->lineSet(
                    A.cfg()),
                Ex.ConventionalLines);
  return R.finish();
}
