//===- bench/BenchUtil.h - Shared helpers for the figure benches --------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every figure of the paper has a bench binary that regenerates the
/// artifact the figure shows and prints paper-expected vs measured.
/// These helpers keep those binaries short and their output uniform.
///
//===----------------------------------------------------------------------===//

#ifndef JSLICE_BENCH_BENCHUTIL_H
#define JSLICE_BENCH_BENCHUTIL_H

#include "corpus/PaperPrograms.h"
#include "jslice/jslice.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace jslice {
namespace bench {

/// Collects pass/fail rows; the binary's exit code is the failure count.
class Report {
public:
  explicit Report(const std::string &Title) {
    std::printf("==== %s ====\n", Title.c_str());
  }

  void section(const std::string &Name) {
    std::printf("\n-- %s --\n", Name.c_str());
  }

  void note(const std::string &Text) { std::printf("%s\n", Text.c_str()); }

  /// One paper-vs-measured row for a line set.
  void expectLines(const std::string &What, const std::set<unsigned> &Got,
                   const std::set<unsigned> &Expected) {
    bool Ok = Got == Expected;
    std::printf("%-34s paper=%-28s measured=%-28s %s\n", What.c_str(),
                formatLineSet(Expected).c_str(), formatLineSet(Got).c_str(),
                Ok ? "MATCH" : "MISMATCH");
    Failures += Ok ? 0 : 1;
  }

  /// One paper-vs-measured row for a scalar.
  void expectValue(const std::string &What, unsigned Got, unsigned Expected) {
    bool Ok = Got == Expected;
    std::printf("%-34s paper=%-28u measured=%-28u %s\n", What.c_str(),
                Expected, Got, Ok ? "MATCH" : "MISMATCH");
    Failures += Ok ? 0 : 1;
  }

  /// A row with no golden value (informational).
  void measured(const std::string &What, const std::string &Value) {
    std::printf("%-34s measured=%s\n", What.c_str(), Value.c_str());
  }

  int finish() {
    std::printf("\n%s (%d mismatch%s)\n",
                Failures == 0 ? "REPRODUCED" : "NOT REPRODUCED", Failures,
                Failures == 1 ? "" : "es");
    return Failures;
  }

private:
  int Failures = 0;
};

/// Loads and analyzes a corpus program; aborts the bench on failure.
inline Analysis analyzeExample(const PaperExample &Ex) {
  ErrorOr<Analysis> A = Analysis::fromSource(Ex.Source);
  if (!A) {
    std::fprintf(stderr, "corpus program %s failed to analyze:\n%s\n",
                 Ex.Name.c_str(), A.diags().str().c_str());
    std::abort();
  }
  return std::move(*A);
}

/// Prints the program with the paper's line numbers.
inline void printNumberedSource(const PaperExample &Ex) {
  unsigned Line = 1;
  for (const std::string &Text : splitLines(Ex.Source))
    std::printf("%3u: %s\n", Line++, Text.c_str());
}

/// Lines of the re-associated labels of a slice, as "L -> line" rows.
inline std::string formatReassociations(const Analysis &A,
                                        const SliceResult &R) {
  std::string Out;
  for (const auto &[Label, Node] : R.ReassociatedLabels) {
    if (!Out.empty())
      Out += ", ";
    const Stmt *S = A.cfg().node(Node).S;
    Out += Label + " -> " + (S ? std::to_string(S->getLoc().Line) : "exit");
  }
  return Out.empty() ? "(none)" : Out;
}

/// Prints the structures the paper's graph figures draw for a program:
/// flowgraph, postdominator tree, control dependence graph, and lexical
/// successor tree — as stable text edge lists with line-number labels.
inline void printGraphs(const Analysis &A) {
  NodeLabelFn Label = [&A](unsigned Node) { return A.cfg().labelOf(Node); };
  std::printf("flowgraph (a):\n%s",
              toEdgeListText(A.cfg().graph(), Label).c_str());
  std::printf("postdominator tree (b), child: parent\n%s",
              domTreeToText(A.pdt(), Label).c_str());
  std::printf("control dependence graph (c):\n%s",
              toEdgeListText(A.pdg().Control, Label).c_str());
  Digraph Lst(A.cfg().numNodes());
  for (unsigned Node = 0; Node != A.cfg().numNodes(); ++Node)
    if (A.lst().parent(Node) >= 0)
      Lst.addEdge(static_cast<unsigned>(A.lst().parent(Node)), Node);
  std::printf("lexical successor tree (d), parent -> children\n%s",
              toEdgeListText(Lst, Label).c_str());
}

/// The unique node on \p Line (use only on lines with one statement).
inline unsigned nodeOn(const Analysis &A, unsigned Line) {
  return A.cfg().nodesOnLine(Line).front();
}

/// "child: parent" assertion helper for tree figures, in line numbers.
inline void expectIpdomLine(Report &R, const Analysis &A, unsigned Line,
                            unsigned ExpectedLine) {
  int Parent = A.pdt().idom(nodeOn(A, Line));
  const Stmt *S = Parent >= 0
                      ? A.cfg().node(static_cast<unsigned>(Parent)).S
                      : nullptr;
  R.expectValue("ipdom(line " + std::to_string(Line) + ")",
                S ? S->getLoc().Line : 0u, ExpectedLine);
}

/// Same for the lexical successor tree (0 = exit).
inline void expectIlsLine(Report &R, const Analysis &A, unsigned Line,
                          unsigned ExpectedLine) {
  int Parent = A.lst().parent(nodeOn(A, Line));
  const Stmt *S = Parent >= 0
                      ? A.cfg().node(static_cast<unsigned>(Parent)).S
                      : nullptr;
  R.expectValue("ils(line " + std::to_string(Line) + ")",
                S ? S->getLoc().Line : 0u, ExpectedLine);
}

/// Wall-clock of \p Fn over \p Iters runs, in microseconds per run.
template <typename Callable>
double timeMicros(unsigned Iters, Callable Fn) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Iters; ++I)
    Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(End - Start).count() /
         Iters;
}

} // namespace bench
} // namespace jslice

#endif // JSLICE_BENCH_BENCHUTIL_H
