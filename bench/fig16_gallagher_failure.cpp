//===- bench/fig16_gallagher_failure.cpp - Figure 16 reproduction -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 16: the program on which Gallagher's rule loses the goto on
/// line 4 (no statement of the block labeled L6 is in the slice), while
/// the paper's algorithm keeps it. Without that goto the sliced program
/// assigns y twice whenever x is negative.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 16: Gallagher's rule loses a required goto");
  const PaperExample &Ex = paperExample("fig16a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 16-a (program)");
  printNumberedSource(Ex);

  SliceResult Gall = *computeSlice(A, Ex.Crit, SliceAlgorithm::Gallagher);
  R.section("Figure 16-b (Gallagher's incorrect slice)");
  std::printf("%s", printSlice(A, Gall).c_str());

  SliceResult New = *computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal);
  R.section("Figure 16-c (the correct slice)");
  std::printf("%s", printSlice(A, New).c_str());

  R.section("paper vs measured");
  R.expectLines("gallagher slice", Gall.lineSet(A.cfg()),
                *Ex.GallagherLines);
  R.expectLines("correct slice", New.lineSet(A.cfg()), Ex.AgrawalLines);
  R.expectValue("goto on 4 in gallagher slice",
                Gall.lineSet(A.cfg()).count(4), 0);
  R.expectValue("goto on 4 in correct slice",
                New.lineSet(A.cfg()).count(4), 1);
  R.expectValue("L6 carrier line",
                A.cfg().node(New.ReassociatedLabels.at("L6")).S->getLoc()
                    .Line,
                10);

  R.section("behavioural witness (x = -3)");
  ResolvedCriterion RC = *resolveCriterion(A, Ex.Crit);
  ExecOptions Opts;
  Opts.Input = {-3};
  ExecResult Orig = runOriginal(A, RC.Node, RC.VarIds, Opts);
  auto Project = [&](const SliceResult &S) {
    std::set<unsigned> Kept = S.Nodes;
    Kept.insert(A.cfg().exit());
    return runProjection(A, Kept, RC.Node, RC.VarIds, Opts);
  };
  ExecResult GallRun = Project(Gall);
  ExecResult NewRun = Project(New);
  R.expectValue("correct slice preserves y at 10",
                NewRun.CriterionValues == Orig.CriterionValues ? 1 : 0, 1);
  R.expectValue("gallagher slice breaks y at 10",
                GallRun.CriterionValues != Orig.CriterionValues ? 1 : 0, 1);
  return R.finish();
}
