//===- bench/fig15_graphs.cpp - Figure 15 reproduction ------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 15: graphs of the switch program 14-a. Checks the break
/// geometry Section 4 relies on: break@3's nearest postdominator is
/// write(x)@8 while its lexical successor is the next clause (line 4);
/// all clause bodies are control dependent on the switch predicate.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 15: graphs of the program in Figure 14-a");
  const PaperExample &Ex = paperExample("fig14a");
  Analysis A = analyzeExample(Ex);

  R.section("graphs");
  printGraphs(A);

  R.section("paper vs measured");
  expectIpdomLine(R, A, 3, 8);
  expectIlsLine(R, A, 3, 4);
  expectIpdomLine(R, A, 5, 8);
  expectIlsLine(R, A, 5, 6);
  expectIpdomLine(R, A, 7, 8);
  expectIlsLine(R, A, 7, 8);

  std::set<unsigned> Controlled;
  for (unsigned Node : A.pdg().Control.succs(nodeOn(A, 1)))
    if (const Stmt *S = A.cfg().node(Node).S)
      Controlled.insert(S->getLoc().Line);
  R.expectLines("switch predicate controls", Controlled,
                {2, 3, 4, 5, 6, 7});
  return R.finish();
}
