//===- bench/perf_scaling.cpp - Runtime scaling with program size -------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment (the paper reports no measurements): how the
/// pipeline scales with program size. One google-benchmark counter per
/// stage — parsing+analysis, the conventional slice, Figure 7, and the
/// two dominator algorithms on the same flowgraphs.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGenerator.h"
#include "jslice/jslice.h"

#include <benchmark/benchmark.h>

using namespace jslice;

namespace {

std::string sourceOfSize(unsigned Stmts, bool Gotos) {
  GenOptions Opts;
  Opts.Seed = 20260705 + Stmts;
  Opts.TargetStmts = Stmts;
  Opts.AllowGotos = Gotos;
  Opts.NumVars = 8;
  return generateProgram(Opts);
}

const Analysis &analysisOfSize(unsigned Stmts) {
  static std::map<unsigned, Analysis> Cache;
  auto It = Cache.find(Stmts);
  if (It == Cache.end()) {
    ErrorOr<Analysis> A =
        Analysis::fromSource(sourceOfSize(Stmts, /*Gotos=*/true));
    assert(A.hasValue() && "generated program must analyze");
    It = Cache.emplace(Stmts, std::move(*A)).first;
  }
  return It->second;
}

void BM_AnalysisPipeline(benchmark::State &State) {
  std::string Source =
      sourceOfSize(static_cast<unsigned>(State.range(0)), true);
  for (auto _ : State) {
    ErrorOr<Analysis> A = Analysis::fromSource(Source);
    benchmark::DoNotOptimize(A.hasValue());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_AnalysisPipeline)->Range(50, 3200)->Complexity();

void BM_ConventionalSlice(benchmark::State &State) {
  const Analysis &A = analysisOfSize(static_cast<unsigned>(State.range(0)));
  ResolvedCriterion RC =
      *resolveCriterion(A, reachableWriteCriteria(A).front());
  for (auto _ : State)
    benchmark::DoNotOptimize(sliceConventional(A, RC).Nodes.size());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ConventionalSlice)->Range(50, 3200)->Complexity();

void BM_AgrawalSlice(benchmark::State &State) {
  const Analysis &A = analysisOfSize(static_cast<unsigned>(State.range(0)));
  ResolvedCriterion RC =
      *resolveCriterion(A, reachableWriteCriteria(A).front());
  for (auto _ : State)
    benchmark::DoNotOptimize(sliceAgrawal(A, RC).Nodes.size());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_AgrawalSlice)->Range(50, 3200)->Complexity();

void BM_BallHorwitzSlice(benchmark::State &State) {
  const Analysis &A = analysisOfSize(static_cast<unsigned>(State.range(0)));
  ResolvedCriterion RC =
      *resolveCriterion(A, reachableWriteCriteria(A).front());
  for (auto _ : State)
    benchmark::DoNotOptimize(sliceBallHorwitz(A, RC).Nodes.size());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BallHorwitzSlice)->Range(50, 3200)->Complexity();

void BM_DominatorsIterative(benchmark::State &State) {
  const Analysis &A = analysisOfSize(static_cast<unsigned>(State.range(0)));
  Digraph Reversed = A.cfg().graph().reversed();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeDominatorsIterative(Reversed, A.cfg().exit()).numNodes());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DominatorsIterative)->Range(50, 3200)->Complexity();

void BM_DominatorsLengauerTarjan(benchmark::State &State) {
  const Analysis &A = analysisOfSize(static_cast<unsigned>(State.range(0)));
  Digraph Reversed = A.cfg().graph().reversed();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeDominatorsLengauerTarjan(Reversed, A.cfg().exit())
            .numNodes());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DominatorsLengauerTarjan)->Range(50, 3200)->Complexity();

} // namespace

BENCHMARK_MAIN();
