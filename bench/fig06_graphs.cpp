//===- bench/fig06_graphs.cpp - Figure 6 reproduction -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 6: graphs of the continue program 5-a. Section 3's decisive
/// facts are checked: for the continue on line 7 the nearest
/// postdominator (the loop head, 3) differs from the immediate lexical
/// successor (line 8), while for the continue on line 11 both walks
/// reach line 3 / line 12 -> 3.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 6: graphs of the program in Figure 5-a");
  const PaperExample &Ex = paperExample("fig5a");
  Analysis A = analyzeExample(Ex);

  R.section("graphs");
  printGraphs(A);

  R.section("paper vs measured (Section 3 walkthrough)");
  expectIpdomLine(R, A, 7, 3);
  expectIlsLine(R, A, 7, 8);
  expectIpdomLine(R, A, 11, 3);
  expectIlsLine(R, A, 11, 12);
  expectIlsLine(R, A, 12, 3);
  expectIlsLine(R, A, 3, 13);
  return R.finish();
}
