//===- bench/fig08_direct_goto.cpp - Figure 8 reproduction --------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 8: the direct-back-jump goto version (8-a), its conventional
/// slice (8-b), and the new algorithm's slice (8-c), which pulls in the
/// gotos on 7, 11, 13 and — through their control dependence — the
/// predicate on 9, re-associating label L12 to line 13. Also checks the
/// Section 5 claim that the Jiang–Zhou–Robson rules miss lines 11/13.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 8: slicing the direct-goto program");
  const PaperExample &Ex = paperExample("fig8a");
  Analysis A = analyzeExample(Ex);

  R.section("Figure 8-a (program)");
  printNumberedSource(Ex);

  SliceResult Conv = *computeSlice(A, Ex.Crit, SliceAlgorithm::Conventional);
  R.section("Figure 8-b (conventional slice, incorrect)");
  std::printf("%s", printSlice(A, Conv).c_str());

  SliceResult New = *computeSlice(A, Ex.Crit, SliceAlgorithm::Agrawal);
  R.section("Figure 8-c (the new algorithm's slice)");
  std::printf("%s", printSlice(A, New).c_str());

  R.section("paper vs measured");
  R.expectLines("conventional slice", Conv.lineSet(A.cfg()),
                Ex.ConventionalLines);
  R.expectLines("figure-7 slice", New.lineSet(A.cfg()), Ex.AgrawalLines);
  R.expectValue("L12 carrier line",
                A.cfg().node(New.ReassociatedLabels.at("L12")).S->getLoc()
                    .Line,
                13);

  SliceResult Jzr =
      *computeSlice(A, Ex.Crit, SliceAlgorithm::JiangZhouRobson);
  R.expectLines("jiang-zhou-robson slice (misses 11 and 13)",
                Jzr.lineSet(A.cfg()), *Ex.JzrLines);
  return R.finish();
}
