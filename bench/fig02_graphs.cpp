//===- bench/fig02_graphs.cpp - Figure 2 reproduction -------------------------===//
//
// Part of the jslice project: a reproduction of H. Agrawal, "On Slicing
// Programs with Jump Statements", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// Figure 2: flowgraph, data dependence, control dependence, and the
/// merged PDG of the jump-free program 1-a. The named dependences the
/// paper calls out in prose are checked explicitly: node 12 is data
/// dependent on 2 and 7; node 7 is control dependent on 5.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jslice;
using namespace jslice::bench;

int main() {
  Report R("Figure 2: graphs of the program in Figure 1-a");
  const PaperExample &Ex = paperExample("fig1a");
  Analysis A = analyzeExample(Ex);
  NodeLabelFn Label = [&A](unsigned Node) { return A.cfg().labelOf(Node); };

  R.section("Figure 2-a (flowgraph) and 2-b (data dependence)");
  std::printf("flowgraph:\n%s",
              toEdgeListText(A.cfg().graph(), Label).c_str());
  std::printf("data dependence (def -> use):\n%s",
              toEdgeListText(A.pdg().Data, Label).c_str());

  R.section("Figure 2-c (control dependence)");
  std::printf("%s", toEdgeListText(A.pdg().Control, Label).c_str());

  R.section("paper vs measured (prose claims)");
  std::set<unsigned> DefsOf12;
  for (unsigned Def : A.pdg().Data.preds(nodeOn(A, 12)))
    DefsOf12.insert(A.cfg().node(Def).S->getLoc().Line);
  R.expectLines("node 12 data dependent on", DefsOf12, {2, 7});

  std::set<unsigned> CtrlOf7;
  for (unsigned Ctrl : A.pdg().Control.preds(nodeOn(A, 7)))
    if (const Stmt *S = A.cfg().node(Ctrl).S)
      CtrlOf7.insert(S->getLoc().Line);
  R.expectLines("node 7 control dependent on", CtrlOf7, {5});

  // Shaded nodes of Figure 2-d = the conventional slice.
  SliceResult Slice = *computeSlice(A, Ex.Crit, SliceAlgorithm::Conventional);
  R.expectLines("figure 2-d shaded nodes", Slice.lineSet(A.cfg()),
                Ex.ConventionalLines);
  return R.finish();
}
